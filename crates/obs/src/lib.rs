//! `prlc-obs`: a zero-dependency, deterministic observability layer for
//! the PRLC workspace.
//!
//! The crate provides four primitives —
//!
//! * [`Counter`] — monotonic `u64` counters,
//! * [`Histogram`] — fixed power-of-two bucket histograms,
//! * [`SpanTimer`] — wall-clock span accumulators (count + nanoseconds),
//! * a bounded structured **event recorder** ([`record_event`]) with
//!   domain-separated IDs,
//!
//! — plus the [`trace`] module: a deterministic causal tracer of
//! logical-clock spans and instant events with its own gate
//! (`PRLC_TRACE=1`) and Perfetto-loadable export —
//!
//! — backed by a process-global [`Registry`] that is a **no-op unless
//! explicitly enabled** (`PRLC_OBS=1` in the environment, or a call to
//! [`enable`]). When disabled, every recording call is a single relaxed
//! atomic load; instrumented hot paths additionally guard on
//! [`enabled`] so they skip even argument computation.
//!
//! # Determinism rules
//!
//! Snapshots are designed to be byte-identical across thread counts and
//! backends for a fixed workload:
//!
//! * counters and histograms are commutative sums — merge order cannot
//!   be observed;
//! * snapshot output is sorted (metrics by name, events by
//!   `(domain, id, kind, value)`);
//! * **no wall-clock values are recorded** in counters, histograms or
//!   events. Wall-clock time lives exclusively in span timers, which
//!   [`Snapshot::to_deterministic_json`] omits (and
//!   [`Snapshot::to_json`] emits as the final `"timers"` key so callers
//!   can strip it textually).
//!
//! # Example
//!
//! ```
//! prlc_obs::enable();
//! prlc_obs::reset();
//! prlc_obs::counter!("demo.widgets").add(3);
//! prlc_obs::histogram!("demo.sizes").observe(17);
//! prlc_obs::record_event("demo", 7, "made", 3);
//! let snap = prlc_obs::snapshot();
//! assert!(snap.to_json().contains("\"demo.widgets\":3"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod trace;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Global enable gate
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();

/// Parses a `PRLC_OBS`/`PRLC_TRACE` value: `1`/`true` enables,
/// `0`/`false`/empty disables (both case-insensitive, surrounding
/// whitespace ignored). `Err` means the value is malformed and should
/// be warned about.
pub(crate) fn parse_obs_env(value: &str) -> Result<bool, ()> {
    let v = value.trim();
    if v == "1" || v.eq_ignore_ascii_case("true") {
        Ok(true)
    } else if v.is_empty() || v == "0" || v.eq_ignore_ascii_case("false") {
        Ok(false)
    } else {
        Err(())
    }
}

fn init_from_env() {
    ENV_INIT.call_once(|| {
        if let Ok(v) = std::env::var("PRLC_OBS") {
            match parse_obs_env(&v) {
                Ok(on) => ENABLED.store(on, Ordering::Relaxed),
                // Mirror runner::default_threads: a malformed value is
                // ignored, but loudly and only once.
                Err(()) => eprintln!(
                    "warning: ignoring PRLC_OBS={v:?} (expected 1/true to enable or \
                     0/false to disable); observability stays disabled"
                ),
            }
        }
    });
}

/// Is recording enabled? Cheap (one relaxed load after first use) —
/// instrumented hot paths call this before touching any metric.
#[inline]
pub fn enabled() -> bool {
    init_from_env();
    ENABLED.load(Ordering::Relaxed)
}

/// Turn recording on for this process (equivalent to `PRLC_OBS=1`).
pub fn enable() {
    init_from_env();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn recording off. Already-recorded values are kept (use [`reset`]
/// to clear them).
pub fn disable() {
    init_from_env();
    ENABLED.store(false, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Metric primitives
// ---------------------------------------------------------------------------

/// A monotonic counter. All mutation is gated on the global enable flag.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// New counter at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Add `n` (no-op while disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add one (no-op while disabled).
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Upper-inclusive bucket bounds shared by every [`Histogram`]; one
/// overflow bucket follows. Fixed at compile time so snapshots from
/// different processes are structurally identical.
pub const BUCKET_BOUNDS: [u64; 14] = [
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536,
];

const NUM_BUCKETS: usize = BUCKET_BOUNDS.len() + 1;

/// A fixed-bucket histogram over `u64` observations. Buckets are
/// upper-inclusive at [`BUCKET_BOUNDS`] plus a final overflow bucket.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// New, empty histogram.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            counts: [ZERO; NUM_BUCKETS],
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Record one observation (no-op while disabled).
    #[inline]
    pub fn observe(&self, v: u64) {
        if !enabled() {
            return;
        }
        let idx = BUCKET_BOUNDS
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(NUM_BUCKETS - 1);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (bounds buckets, then the overflow bucket).
    pub fn bucket_counts(&self) -> [u64; NUM_BUCKETS] {
        let mut out = [0u64; NUM_BUCKETS];
        for (o, c) in out.iter_mut().zip(self.counts.iter()) {
            *o = c.load(Ordering::Relaxed);
        }
        out
    }

    fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
    }
}

/// Accumulates wall-clock span durations. Timer values are the one
/// deliberately non-deterministic quantity in the crate; they are
/// segregated into the final `"timers"` JSON key and omitted from
/// deterministic snapshots.
#[derive(Debug, Default)]
pub struct SpanTimer {
    count: AtomicU64,
    nanos: AtomicU64,
}

impl SpanTimer {
    /// New timer at zero.
    pub const fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            nanos: AtomicU64::new(0),
        }
    }

    /// Start a span; the elapsed time is recorded when the returned
    /// guard drops. While disabled this never reads the clock.
    #[inline]
    pub fn span(&'static self) -> Span {
        Span {
            inner: enabled().then(|| (self, Instant::now())),
        }
    }

    /// Number of completed spans.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Total accumulated nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.nanos.store(0, Ordering::Relaxed);
    }
}

/// RAII guard returned by [`SpanTimer::span`].
#[must_use = "a span records its duration when dropped"]
pub struct Span {
    inner: Option<(&'static SpanTimer, Instant)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((timer, start)) = self.inner.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            timer.count.fetch_add(1, Ordering::Relaxed);
            timer.nanos.fetch_add(ns, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// One structured event. `domain` separates ID namespaces (e.g. a
/// `net.churn` event's `id` is a node index, a `sim.lossy` event's `id`
/// is a run seed); `value` must be derived from the workload, never
/// from the clock.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Event {
    /// Namespace for `id` (e.g. `"net.churn"`).
    pub domain: &'static str,
    /// Identifier within the domain.
    pub id: u64,
    /// What happened (e.g. `"crash"`).
    pub kind: &'static str,
    /// Deterministic payload value.
    pub value: u64,
}

/// Maximum events retained by a registry; later events only bump the
/// drop counter so the recorder stays bounded. Overflow is never
/// silent: every snapshot carries the count both as the top-level
/// `events_dropped` field and as the injected `obs.events.dropped`
/// counter (also exported to Prometheus as `prlc_obs_events_dropped`).
pub const EVENT_CAPACITY: usize = 4096;

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Metrics {
    counters: BTreeMap<&'static str, &'static Counter>,
    histograms: BTreeMap<&'static str, &'static Histogram>,
    timers: BTreeMap<&'static str, &'static SpanTimer>,
}

/// A named collection of metrics plus a bounded event buffer.
///
/// Most users talk to the process-global registry through
/// [`registry`], the [`counter!`]/[`histogram!`]/[`timer!`] macros and
/// the free functions; standalone instances are useful in unit tests.
/// Metric handles are leaked on registration (`&'static`) — registries
/// are expected to live for the process.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<Metrics>,
    events: Mutex<Vec<Event>>,
    events_dropped: AtomicU64,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Registry {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or register the counter called `name`.
    pub fn counter(&self, name: &'static str) -> &'static Counter {
        lock(&self.metrics)
            .counters
            .entry(name)
            .or_insert_with(|| &*Box::leak(Box::new(Counter::new())))
    }

    /// Get or register the histogram called `name`.
    pub fn histogram(&self, name: &'static str) -> &'static Histogram {
        lock(&self.metrics)
            .histograms
            .entry(name)
            .or_insert_with(|| &*Box::leak(Box::new(Histogram::new())))
    }

    /// Get or register the span timer called `name`.
    pub fn timer(&self, name: &'static str) -> &'static SpanTimer {
        lock(&self.metrics)
            .timers
            .entry(name)
            .or_insert_with(|| &*Box::leak(Box::new(SpanTimer::new())))
    }

    /// Record a structured event (no-op while disabled). The buffer is
    /// bounded at [`EVENT_CAPACITY`]; overflow increments a drop
    /// counter instead of growing.
    pub fn record_event(&self, domain: &'static str, id: u64, kind: &'static str, value: u64) {
        if !enabled() {
            return;
        }
        let mut events = lock(&self.events);
        if events.len() < EVENT_CAPACITY {
            events.push(Event {
                domain,
                id,
                kind,
                value,
            });
        } else {
            self.events_dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Zero every metric and clear the event buffer. Registered names
    /// survive (they reappear in snapshots with zero values).
    pub fn reset(&self) {
        let metrics = lock(&self.metrics);
        for c in metrics.counters.values() {
            c.reset();
        }
        for h in metrics.histograms.values() {
            h.reset();
        }
        for t in metrics.timers.values() {
            t.reset();
        }
        drop(metrics);
        lock(&self.events).clear();
        self.events_dropped.store(0, Ordering::Relaxed);
    }

    /// A point-in-time, fully sorted copy of everything recorded.
    ///
    /// The always-on `obs.events.dropped` counter (how many events the
    /// bounded recorder discarded, see [`EVENT_CAPACITY`]) is injected
    /// at its sorted position so overflow is never silent, even when no
    /// macro call site registers it.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = lock(&self.metrics);
        let mut counters: Vec<(&'static str, u64)> = metrics
            .counters
            .iter()
            .map(|(&n, c)| (n, c.get()))
            .collect();
        const DROPPED_KEY: &str = "obs.events.dropped";
        let dropped = self.events_dropped.load(Ordering::Relaxed);
        let pos = counters.partition_point(|&(n, _)| n < DROPPED_KEY);
        match counters.get(pos) {
            Some(&(n, _)) if n == DROPPED_KEY => counters[pos].1 += dropped,
            _ => counters.insert(pos, (DROPPED_KEY, dropped)),
        }
        let histograms = metrics
            .histograms
            .iter()
            .map(|(&n, h)| {
                (
                    n,
                    HistogramSnapshot {
                        counts: h.bucket_counts().to_vec(),
                        sum: h.sum(),
                        count: h.count(),
                    },
                )
            })
            .collect();
        let timers = metrics
            .timers
            .iter()
            .map(|(&n, t)| {
                (
                    n,
                    TimerSnapshot {
                        count: t.count(),
                        total_nanos: t.total_nanos(),
                    },
                )
            })
            .collect();
        drop(metrics);
        let mut events = lock(&self.events).clone();
        events.sort();
        Snapshot {
            counters,
            histograms,
            timers,
            events,
            events_dropped: self.events_dropped.load(Ordering::Relaxed),
        }
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-global registry used by the `counter!`/`histogram!`/
/// `timer!` macros and the free functions below.
pub fn registry() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Record an event in the global registry. See [`Registry::record_event`].
pub fn record_event(domain: &'static str, id: u64, kind: &'static str, value: u64) {
    registry().record_event(domain, id, kind, value);
}

/// Snapshot the global registry.
pub fn snapshot() -> Snapshot {
    registry().snapshot()
}

/// Reset the global registry. See [`Registry::reset`].
pub fn reset() {
    registry().reset();
}

/// Get or register a counter in the global registry, caching the handle
/// per call site.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry().counter($name))
    }};
}

/// Get or register a histogram in the global registry, caching the
/// handle per call site.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry().histogram($name))
    }};
}

/// Get or register a span timer in the global registry, caching the
/// handle per call site.
#[macro_export]
macro_rules! timer {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::SpanTimer> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry().timer($name))
    }};
}

// ---------------------------------------------------------------------------
// Snapshots & exporters
// ---------------------------------------------------------------------------

/// Frozen histogram state inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts ([`BUCKET_BOUNDS`] buckets, then overflow).
    pub counts: Vec<u64>,
    /// Sum of all observations.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Upper-bound estimate of the `q`-quantile (`0 < q <= 1`): the
    /// [`BUCKET_BOUNDS`] entry of the bucket holding the
    /// `ceil(q * count)`-th smallest observation. Deterministic — a
    /// pure function of the bucket counts, so it carries the same
    /// cross-thread/cross-backend guarantee the counts do.
    ///
    /// Returns `None` for an empty histogram or when the rank lands in
    /// the overflow bucket (no finite upper bound to report).
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        // ceil(q * count), clamped to [1, count].
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return BUCKET_BOUNDS.get(i).copied();
            }
        }
        None
    }
}

/// Frozen span-timer state inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimerSnapshot {
    /// Completed spans.
    pub count: u64,
    /// Total wall-clock nanoseconds.
    pub total_nanos: u64,
}

/// A point-in-time copy of a registry, sorted for reproducible export.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Counter values by name (sorted).
    pub counters: Vec<(&'static str, u64)>,
    /// Histogram states by name (sorted).
    pub histograms: Vec<(&'static str, HistogramSnapshot)>,
    /// Timer states by name (sorted). Wall-clock — non-deterministic.
    pub timers: Vec<(&'static str, TimerSnapshot)>,
    /// Events sorted by `(domain, id, kind, value)`.
    pub events: Vec<Event>,
    /// Events discarded after the buffer filled.
    pub events_dropped: u64,
}

pub(crate) fn json_escape(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

impl Snapshot {
    fn deterministic_body(&self) -> String {
        let mut s = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('"');
            json_escape(name, &mut s);
            s.push_str(&format!("\":{v}"));
        }
        s.push_str("},\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"domain\":\"");
            json_escape(e.domain, &mut s);
            s.push_str(&format!("\",\"id\":{},\"kind\":\"", e.id));
            json_escape(e.kind, &mut s);
            s.push_str(&format!("\",\"value\":{}}}", e.value));
        }
        s.push_str(&format!("],\"events_dropped\":{},", self.events_dropped));
        s.push_str("\"histogram_bounds\":[");
        for (i, b) in BUCKET_BOUNDS.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&b.to_string());
        }
        s.push_str("],\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('"');
            json_escape(name, &mut s);
            s.push_str("\":{\"counts\":[");
            for (j, c) in h.counts.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&c.to_string());
            }
            s.push_str(&format!("],\"sum\":{},\"count\":{}", h.sum, h.count));
            // Bucket-derived percentile upper bounds (docs/METRICS.md,
            // "Histogram percentiles"); null when the rank falls in the
            // overflow bucket or the histogram is empty.
            for (key, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
                match h.percentile(q) {
                    Some(v) => s.push_str(&format!(",\"{key}\":{v}")),
                    None => s.push_str(&format!(",\"{key}\":null")),
                }
            }
            s.push('}');
        }
        s.push_str("}}");
        s
    }

    /// JSON without any wall-clock content: byte-identical across
    /// thread counts for a fixed workload.
    pub fn to_deterministic_json(&self) -> String {
        self.deterministic_body()
    }

    /// Full JSON. The non-deterministic `"timers"` object is emitted as
    /// the **final** key, so `to_json()` is exactly
    /// [`Self::to_deterministic_json`] with `,"timers":{...}` spliced
    /// in before the closing brace — trivially strippable.
    pub fn to_json(&self) -> String {
        let mut s = self.deterministic_body();
        s.pop(); // closing brace
        s.push_str(",\"timers\":{");
        for (i, (name, t)) in self.timers.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('"');
            json_escape(name, &mut s);
            s.push_str(&format!(
                "\":{{\"count\":{},\"total_ns\":{}}}",
                t.count, t.total_nanos
            ));
        }
        s.push_str("}}");
        s
    }

    /// Prometheus text exposition format. Metric names are prefixed
    /// with `prlc_` and sanitised (`.` and other non-identifier
    /// characters become `_`). Events are summarised per
    /// `(domain, kind)` as a labelled counter whose label values are
    /// escaped per the exposition grammar (`\\`, `\"`, `\n`).
    pub fn to_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect()
        }
        fn label_escape(value: &str) -> String {
            let mut out = String::with_capacity(value.len());
            for c in value.chars() {
                match c {
                    '\\' => out.push_str("\\\\"),
                    '"' => out.push_str("\\\""),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
            out
        }
        let mut s = String::new();
        for (name, v) in &self.counters {
            let n = sanitize(name);
            s.push_str(&format!("# TYPE prlc_{n} counter\nprlc_{n} {v}\n"));
        }
        for (name, h) in &self.histograms {
            let n = sanitize(name);
            s.push_str(&format!("# TYPE prlc_{n} histogram\n"));
            let mut cum = 0u64;
            for (bound, c) in BUCKET_BOUNDS.iter().zip(h.counts.iter()) {
                cum += c;
                s.push_str(&format!("prlc_{n}_bucket{{le=\"{bound}\"}} {cum}\n"));
            }
            s.push_str(&format!(
                "prlc_{n}_bucket{{le=\"+Inf\"}} {}\nprlc_{n}_sum {}\nprlc_{n}_count {}\n",
                h.count, h.sum, h.count
            ));
        }
        for (name, t) in &self.timers {
            let n = sanitize(name);
            s.push_str(&format!(
                "# TYPE prlc_{n}_spans counter\nprlc_{n}_spans {}\n\
                 # TYPE prlc_{n}_ns_total counter\nprlc_{n}_ns_total {}\n",
                t.count, t.total_nanos
            ));
        }
        let mut per_kind: BTreeMap<(&str, &str), u64> = BTreeMap::new();
        for e in &self.events {
            *per_kind.entry((e.domain, e.kind)).or_insert(0) += 1;
        }
        if !per_kind.is_empty() {
            s.push_str("# TYPE prlc_events_total counter\n");
        }
        for ((domain, kind), c) in per_kind {
            s.push_str(&format!(
                "prlc_events_total{{domain=\"{}\",kind=\"{}\"}} {c}\n",
                label_escape(domain),
                label_escape(kind)
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The enable flag is process-global: serialise tests that toggle it.
    static TEST_GUARD: Mutex<()> = Mutex::new(());

    fn guarded() -> std::sync::MutexGuard<'static, ()> {
        TEST_GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn obs_env_values_parse_or_flag_malformed() {
        assert_eq!(parse_obs_env("1"), Ok(true));
        assert_eq!(parse_obs_env("true"), Ok(true));
        assert_eq!(parse_obs_env("TRUE"), Ok(true));
        assert_eq!(parse_obs_env(" 1 "), Ok(true));
        assert_eq!(parse_obs_env("0"), Ok(false));
        assert_eq!(parse_obs_env("false"), Ok(false));
        assert_eq!(parse_obs_env(""), Ok(false));
        // Malformed values must be reported, not silently disabled.
        assert_eq!(parse_obs_env("yes"), Err(()));
        assert_eq!(parse_obs_env("on"), Err(()));
        assert_eq!(parse_obs_env("2"), Err(()));
    }

    #[test]
    fn disabled_by_default_records_nothing() {
        let _g = guarded();
        disable();
        let r = Registry::new();
        r.counter("c").add(5);
        r.histogram("h").observe(9);
        r.record_event("d", 1, "k", 2);
        let snap = r.snapshot();
        assert_eq!(snap.counters, vec![("c", 0), ("obs.events.dropped", 0)]);
        assert_eq!(snap.histograms[0].1.count, 0);
        assert!(snap.events.is_empty());
    }

    #[test]
    fn counters_histograms_events_round_trip() {
        let _g = guarded();
        enable();
        let r = Registry::new();
        r.counter("a.x").add(2);
        r.counter("a.x").incr();
        r.counter("b.y").incr();
        let h = r.histogram("sizes");
        h.observe(0);
        h.observe(1);
        h.observe(2);
        h.observe(1_000_000);
        r.record_event("dom", 9, "boom", 4);
        r.record_event("dom", 3, "boom", 1);
        let snap = r.snapshot();
        assert_eq!(
            snap.counters,
            vec![("a.x", 3), ("b.y", 1), ("obs.events.dropped", 0)]
        );
        let hs = &snap.histograms[0].1;
        assert_eq!(hs.count, 4);
        assert_eq!(hs.sum, 1_000_003);
        assert_eq!(hs.counts[0], 2); // 0 and 1 both land in the <=1 bucket
        assert_eq!(hs.counts[1], 1);
        assert_eq!(*hs.counts.last().unwrap(), 1); // overflow
                                                   // Events come back sorted by (domain, id, kind, value).
        assert_eq!(snap.events[0].id, 3);
        assert_eq!(snap.events[1].id, 9);
        disable();
    }

    #[test]
    fn histogram_percentiles() {
        // Empty histogram: no percentile at all.
        let empty = HistogramSnapshot {
            counts: vec![0; NUM_BUCKETS],
            sum: 0,
            count: 0,
        };
        assert_eq!(empty.percentile(0.5), None);

        // 10 observations of 1 and one of 1000: p50/p90 sit in the
        // <=1 bucket, p99 lands on the 11th value (bound 1024).
        let mut counts = vec![0u64; NUM_BUCKETS];
        counts[0] = 10;
        counts[10] = 1; // bound 1024
        let h = HistogramSnapshot {
            counts,
            sum: 1010,
            count: 11,
        };
        assert_eq!(h.percentile(0.50), Some(1));
        assert_eq!(h.percentile(0.90), Some(1));
        assert_eq!(h.percentile(0.99), Some(1024));
        assert_eq!(h.percentile(1.0), Some(1024));

        // A single overflow observation has no finite bound.
        let mut counts = vec![0u64; NUM_BUCKETS];
        counts[NUM_BUCKETS - 1] = 1;
        let o = HistogramSnapshot {
            counts,
            sum: 1_000_000,
            count: 1,
        };
        assert_eq!(o.percentile(0.5), None);

        // The deterministic JSON carries the three fixed keys.
        let _g = guarded();
        enable();
        let r = Registry::new();
        r.histogram("h").observe(3);
        let det = r.snapshot().to_deterministic_json();
        assert!(det.contains("\"p50\":4,\"p90\":4,\"p99\":4"));
        r.reset();
        let det = r.snapshot().to_deterministic_json();
        assert!(det.contains("\"p50\":null,\"p90\":null,\"p99\":null"));
        disable();
    }

    #[test]
    fn event_buffer_is_bounded() {
        let _g = guarded();
        enable();
        let r = Registry::new();
        for i in 0..(EVENT_CAPACITY as u64 + 10) {
            r.record_event("d", i, "k", 0);
        }
        let snap = r.snapshot();
        assert_eq!(snap.events.len(), EVENT_CAPACITY);
        assert_eq!(snap.events_dropped, 10);
        // Overflow is surfaced as a counter too, not just the raw field.
        assert!(snap.counters.contains(&("obs.events.dropped", 10)));
        assert!(r
            .snapshot()
            .to_prometheus()
            .contains("prlc_obs_events_dropped 10"));
        r.reset();
        let snap = r.snapshot();
        assert!(snap.events.is_empty());
        assert_eq!(snap.events_dropped, 0);
        disable();
    }

    #[test]
    fn reset_zeroes_but_keeps_names() {
        let _g = guarded();
        enable();
        let r = Registry::new();
        r.counter("kept").add(7);
        r.reset();
        assert_eq!(
            r.snapshot().counters,
            vec![("kept", 0), ("obs.events.dropped", 0)]
        );
        disable();
    }

    #[test]
    fn json_shapes() {
        let _g = guarded();
        enable();
        let r = Registry::new();
        r.counter("n").add(1);
        r.histogram("h").observe(3);
        let _ = r.timer("t"); // registered, zero
        r.record_event("d", 2, "k", 5);
        let snap = r.snapshot();
        let det = snap.to_deterministic_json();
        let full = snap.to_json();
        assert!(det.starts_with("{\"counters\":{\"n\":1,\"obs.events.dropped\":0}"));
        assert!(det.contains("\"events\":[{\"domain\":\"d\",\"id\":2,\"kind\":\"k\",\"value\":5}]"));
        assert!(det.contains("\"histograms\":{\"h\":{\"counts\":["));
        assert!(!det.contains("\"timers\""));
        // Full JSON is the deterministic body plus a trailing timers key.
        assert!(full.starts_with(&det[..det.len() - 1]));
        let stripped = &full[..full.find(",\"timers\":").unwrap()];
        assert_eq!(format!("{stripped}}}"), det);
        assert!(full.ends_with("\"timers\":{\"t\":{\"count\":0,\"total_ns\":0}}}"));
        disable();
    }

    #[test]
    fn prometheus_export_shape() {
        let _g = guarded();
        enable();
        let r = Registry::new();
        r.counter("gf.axpy.bytes.simd").add(64);
        r.histogram("rows").observe(2);
        r.record_event("net.churn", 4, "crash", 1);
        r.record_event("odd\"dom\\ain", 1, "k\nind", 2);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("prlc_gf_axpy_bytes_simd 64"));
        assert!(text.contains("prlc_rows_bucket{le=\"2\"} 1"));
        assert!(text.contains("prlc_rows_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("prlc_rows_sum 2"));
        assert!(text.contains("prlc_rows_count 1"));
        assert!(text.contains("# TYPE prlc_events_total counter"));
        assert!(text.contains("prlc_events_total{domain=\"net.churn\",kind=\"crash\"} 1"));
        // Label values escape backslash, quote and newline per the
        // exposition grammar — one sample must stay one line.
        assert!(text.contains("domain=\"odd\\\"dom\\\\ain\",kind=\"k\\nind\""));
        assert!(text.contains("prlc_obs_events_dropped 0"));
        for line in text.lines() {
            assert!(
                line.starts_with("# TYPE ") || line.starts_with("prlc_"),
                "malformed exposition line: {line:?}"
            );
        }
        disable();
    }

    /// Minimal JSON well-formedness checker for the round-trip test (no
    /// serde in this workspace): returns the index after one value.
    fn json_value(b: &[u8], mut i: usize) -> Result<usize, String> {
        fn ws(b: &[u8], mut i: usize) -> usize {
            while b.get(i).is_some_and(|c| c.is_ascii_whitespace()) {
                i += 1;
            }
            i
        }
        i = ws(b, i);
        match b.get(i) {
            Some(b'{') => {
                i = ws(b, i + 1);
                if b.get(i) == Some(&b'}') {
                    return Ok(i + 1);
                }
                loop {
                    i = json_value(b, i)?; // key (validated as a value; must be a string)
                    i = ws(b, i);
                    if b.get(i) != Some(&b':') {
                        return Err(format!("expected ':' at {i}"));
                    }
                    i = json_value(b, i + 1)?;
                    i = ws(b, i);
                    match b.get(i) {
                        Some(b',') => i += 1,
                        Some(b'}') => return Ok(i + 1),
                        _ => return Err(format!("expected ',' or '}}' at {i}")),
                    }
                }
            }
            Some(b'[') => {
                i = ws(b, i + 1);
                if b.get(i) == Some(&b']') {
                    return Ok(i + 1);
                }
                loop {
                    i = json_value(b, i)?;
                    i = ws(b, i);
                    match b.get(i) {
                        Some(b',') => i += 1,
                        Some(b']') => return Ok(i + 1),
                        _ => return Err(format!("expected ',' or ']' at {i}")),
                    }
                }
            }
            Some(b'"') => {
                i += 1;
                while let Some(&c) = b.get(i) {
                    match c {
                        b'"' => return Ok(i + 1),
                        b'\\' => i += 2,
                        _ => i += 1,
                    }
                }
                Err("unterminated string".to_string())
            }
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                i += 1;
                while b
                    .get(i)
                    .is_some_and(|c| c.is_ascii_digit() || b".eE+-".contains(c))
                {
                    i += 1;
                }
                Ok(i)
            }
            Some(b't') => Ok(i + 4),
            Some(b'f') => Ok(i + 5),
            Some(b'n') => Ok(i + 4),
            other => Err(format!("unexpected {other:?} at {i}")),
        }
    }

    fn assert_json_well_formed(s: &str) {
        let end = json_value(s.as_bytes(), 0).unwrap_or_else(|e| panic!("{e} in {s}"));
        assert_eq!(end, s.len(), "trailing garbage in {s}");
    }

    #[test]
    fn exports_round_trip_as_well_formed_documents() {
        let _g = guarded();
        enable();
        let r = Registry::new();
        r.counter("net.collect.blocks").add(3);
        r.counter("weird\"name\\with\nescapes").incr();
        r.histogram("net.collect.query_hops").observe(7);
        let _ = r.timer("sim.run");
        r.record_event("net.churn", 2, "crash", 1);
        let snap = r.snapshot();
        assert_json_well_formed(&snap.to_json());
        assert_json_well_formed(&snap.to_deterministic_json());
        // Prometheus: every sample line must be `name{labels} value` or
        // `name value` with a numeric value, even with hostile names.
        for line in snap.to_prometheus().lines() {
            if line.starts_with("# TYPE ") {
                continue;
            }
            let (name_part, value) = line.rsplit_once(' ').unwrap_or_else(|| {
                panic!("sample line without value: {line:?}");
            });
            assert!(
                value.parse::<f64>().is_ok(),
                "non-numeric sample value in {line:?}"
            );
            let name = name_part.split('{').next().unwrap_or("");
            assert!(
                !name.is_empty()
                    && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                    && !name.starts_with(|c: char| c.is_ascii_digit()),
                "invalid metric name in {line:?}"
            );
        }
        disable();
    }

    #[test]
    fn span_timer_accumulates_only_when_enabled() {
        let _g = guarded();
        disable();
        let r = Registry::new();
        let t = r.timer("t");
        drop(t.span());
        assert_eq!(t.count(), 0);
        enable();
        drop(t.span());
        assert_eq!(t.count(), 1);
        disable();
    }

    #[test]
    fn global_macros_register_in_global_registry() {
        let _g = guarded();
        enable();
        counter!("obs.test.macro").add(2);
        histogram!("obs.test.hist").observe(5);
        let _span = timer!("obs.test.timer").span();
        drop(_span);
        record_event("obs.test", 1, "fired", 2);
        let snap = snapshot();
        assert!(snap
            .counters
            .iter()
            .any(|&(n, v)| n == "obs.test.macro" && v >= 2));
        assert!(snap.histograms.iter().any(|(n, _)| *n == "obs.test.hist"));
        assert!(snap.timers.iter().any(|(n, _)| *n == "obs.test.timer"));
        disable();
    }
}
