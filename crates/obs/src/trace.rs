//! Deterministic causal tracing: a bounded, process-global flight
//! recorder of spans and instant events stamped with **logical clocks**
//! (RREF row counts, network message steps, churn epochs — never the
//! wall clock).
//!
//! # Model
//!
//! Trace records are grouped into **tracks**. A track is one causal
//! timeline: the simulation runner opens a track per Monte-Carlo run
//! (track id = the run's split seed), and everything recorded while
//! that run executes — decoder pivots, network session spans, fault
//! retries — lands on its track in program order. Code outside any run
//! records to the reserved [`MAIN_TRACK`].
//!
//! Because each run executes wholly on one thread and owns a unique
//! track id, the set of `(track, record index)` pairs is independent of
//! the worker-thread count: exports sort tracks by id and keep records
//! in insertion order, so a trace dump for a pinned seed is
//! **byte-identical across `PRLC_THREADS` and kernel backends**. The
//! same reasoning makes the bound deterministic: each track holds at
//! most [`TRACK_CAPACITY`] records and counts its own overflow, so
//! *which* records are dropped never depends on thread interleaving.
//!
//! # Gate
//!
//! Tracing is off unless `PRLC_TRACE=1` is set or [`enable`] is called;
//! it is independent of the metrics gate ([`crate::enabled`]) so heavy
//! per-row provenance can stay off while cheap counters run.
//!
//! # Exporters
//!
//! [`TraceSnapshot::to_json`] is fully deterministic (no wall-clock
//! content at all). [`TraceSnapshot::to_chrome_trace`] renders the same
//! records in Chrome Trace Event format — load the file in Perfetto or
//! `chrome://tracing`; logical ticks are displayed as microseconds.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once, OnceLock};

// ---------------------------------------------------------------------------
// Enable gate (independent of the metrics gate)
// ---------------------------------------------------------------------------

static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);
static TRACE_ENV_INIT: Once = Once::new();

fn init_from_env() {
    TRACE_ENV_INIT.call_once(|| {
        if let Ok(v) = std::env::var("PRLC_TRACE") {
            match crate::parse_obs_env(&v) {
                Ok(on) => TRACE_ENABLED.store(on, Ordering::Relaxed),
                Err(()) => eprintln!(
                    "warning: ignoring PRLC_TRACE={v:?} (expected 1/true to enable or \
                     0/false to disable); tracing stays disabled"
                ),
            }
        }
    });
}

/// Is tracing enabled? Instrumented paths call this before computing
/// any record arguments.
#[inline]
pub fn enabled() -> bool {
    init_from_env();
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// Turn tracing on for this process (equivalent to `PRLC_TRACE=1`).
pub fn enable() {
    init_from_env();
    TRACE_ENABLED.store(true, Ordering::Relaxed);
}

/// Turn tracing off. Already-recorded tracks are kept (use [`reset`]
/// to clear them).
pub fn disable() {
    init_from_env();
    TRACE_ENABLED.store(false, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Records and tracks
// ---------------------------------------------------------------------------

/// The track records land on when no [`TrackGuard`] is active.
pub const MAIN_TRACK: u64 = 0;

/// Maximum records retained **per track**; overflow bumps the track's
/// drop counter instead of growing. The bound is per-track (not global)
/// so that which records survive never depends on how worker threads
/// interleave their runs.
pub const TRACK_CAPACITY: usize = 4096;

/// One trace record: a completed span or an instant event. All times
/// are logical clocks supplied by the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceRecord {
    /// A causal interval, recorded once finished.
    Span {
        /// Registered span name (see the taxonomy in `docs/METRICS.md`).
        name: &'static str,
        /// Logical-clock value when the span opened.
        start: u64,
        /// Logical-clock value when the span closed (`>= start`).
        end: u64,
        /// Deterministic key/value annotations.
        args: Vec<(&'static str, u64)>,
    },
    /// A point event on a logical timeline (an "instant" in trace-viewer
    /// terms; the identifier avoids the wall-clock type name the L1
    /// determinism lint bans as a token).
    Point {
        /// Registered event name (see the taxonomy in `docs/METRICS.md`).
        name: &'static str,
        /// Logical-clock value of the event.
        tick: u64,
        /// Deterministic key/value annotations.
        args: Vec<(&'static str, u64)>,
    },
}

impl TraceRecord {
    /// The record's registered name.
    pub fn name(&self) -> &'static str {
        match self {
            TraceRecord::Span { name, .. } | TraceRecord::Point { name, .. } => name,
        }
    }

    /// The record's primary logical-clock value (a span's start).
    pub fn tick(&self) -> u64 {
        match self {
            TraceRecord::Span { start, .. } => *start,
            TraceRecord::Point { tick, .. } => *tick,
        }
    }

    /// The record's annotations.
    pub fn args(&self) -> &[(&'static str, u64)] {
        match self {
            TraceRecord::Span { args, .. } | TraceRecord::Point { args, .. } => args,
        }
    }

    /// Looks up one annotation by key.
    pub fn arg(&self, key: &str) -> Option<u64> {
        self.args().iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
    }
}

#[derive(Debug, Default)]
struct TrackBuf {
    records: Vec<TraceRecord>,
    dropped: u64,
}

#[derive(Default)]
struct TraceRegistry {
    tracks: Mutex<BTreeMap<u64, TrackBuf>>,
}

static GLOBAL_TRACE: OnceLock<TraceRegistry> = OnceLock::new();

fn registry() -> &'static TraceRegistry {
    GLOBAL_TRACE.get_or_init(TraceRegistry::default)
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    static CURRENT_TRACK: Cell<u64> = const { Cell::new(MAIN_TRACK) };
}

/// RAII guard that routes this thread's trace records to a track; the
/// previous track is restored on drop. The simulation runner opens one
/// per Monte-Carlo run with the run's split seed as the id.
#[must_use = "records go back to the previous track when the guard drops"]
#[derive(Debug)]
pub struct TrackGuard {
    prev: u64,
}

/// Switch this thread's trace records onto track `id` until the guard
/// drops.
pub fn track(id: u64) -> TrackGuard {
    let prev = CURRENT_TRACK.with(|c| c.replace(id));
    TrackGuard { prev }
}

impl Drop for TrackGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        CURRENT_TRACK.with(|c| c.set(prev));
    }
}

fn push(record: TraceRecord) {
    let track = CURRENT_TRACK.with(Cell::get);
    let mut tracks = lock(&registry().tracks);
    let buf = tracks.entry(track).or_default();
    if buf.records.len() < TRACK_CAPACITY {
        buf.records.push(record);
    } else {
        buf.dropped += 1;
    }
}

/// Record a completed span on the current track (no-op while tracing is
/// disabled). `start`/`end` are logical-clock values; prefer the
/// [`trace_span!`](crate::trace_span) macro so the name stays a literal
/// the lint registry can check.
pub fn record_span(name: &'static str, start: u64, end: u64, args: &[(&'static str, u64)]) {
    if !enabled() {
        return;
    }
    push(TraceRecord::Span {
        name,
        start,
        end: end.max(start),
        args: args.to_vec(),
    });
}

/// Record an instant event on the current track (no-op while tracing is
/// disabled). Prefer the [`trace_instant!`](crate::trace_instant) macro
/// so the name stays a literal the lint registry can check.
pub fn record_instant(name: &'static str, tick: u64, args: &[(&'static str, u64)]) {
    if !enabled() {
        return;
    }
    push(TraceRecord::Point {
        name,
        tick,
        args: args.to_vec(),
    });
}

/// Clear every track and drop counter. The enable flag is untouched.
pub fn reset() {
    lock(&registry().tracks).clear();
}

/// Record a span on the current track. The first argument must be a
/// string literal from the `docs/METRICS.md` span registry; annotation
/// keys are bare identifiers, values must be `u64`:
///
/// ```
/// prlc_obs::trace::enable();
/// prlc_obs::trace_span!("net.collect.session", 0u64, 12u64, blocks: 5u64);
/// prlc_obs::trace::reset();
/// ```
#[macro_export]
macro_rules! trace_span {
    ($name:expr, $start:expr, $end:expr $(, $k:ident : $v:expr)* $(,)?) => {
        $crate::trace::record_span($name, $start, $end, &[$((stringify!($k), $v)),*])
    };
}

/// Record an instant event on the current track. Same argument
/// conventions as [`trace_span!`](crate::trace_span):
///
/// ```
/// prlc_obs::trace::enable();
/// prlc_obs::trace_instant!("linalg.rref.pivot", 3u64, col: 1u64);
/// prlc_obs::trace::reset();
/// ```
#[macro_export]
macro_rules! trace_instant {
    ($name:expr, $tick:expr $(, $k:ident : $v:expr)* $(,)?) => {
        $crate::trace::record_instant($name, $tick, &[$((stringify!($k), $v)),*])
    };
}

// ---------------------------------------------------------------------------
// Snapshot & exporters
// ---------------------------------------------------------------------------

/// Frozen state of one track inside a [`TraceSnapshot`].
#[derive(Debug, Clone)]
pub struct TrackSnapshot {
    /// Track id ([`MAIN_TRACK`] or a run's split seed).
    pub track: u64,
    /// Records dropped after the track filled.
    pub dropped: u64,
    /// Retained records in insertion (program) order.
    pub records: Vec<TraceRecord>,
}

/// A point-in-time copy of every track, sorted by track id. Contains no
/// wall-clock content, so both exporters are byte-deterministic for a
/// pinned workload.
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// Tracks sorted by id.
    pub tracks: Vec<TrackSnapshot>,
}

/// Snapshot the global trace recorder.
pub fn snapshot() -> TraceSnapshot {
    let tracks = lock(&registry().tracks);
    TraceSnapshot {
        tracks: tracks
            .iter()
            .map(|(&track, buf)| TrackSnapshot {
                track,
                dropped: buf.dropped,
                records: buf.records.clone(),
            })
            .collect(),
    }
}

impl TraceSnapshot {
    /// Total records across all tracks.
    pub fn len(&self) -> usize {
        self.tracks.iter().map(|t| t.records.len()).sum()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sorted, deduplicated record names — the runtime side of the
    /// span/instant name registry check.
    pub fn names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = self
            .tracks
            .iter()
            .flat_map(|t| t.records.iter().map(TraceRecord::name))
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Iterate `(track id, record)` pairs in export order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &TraceRecord)> {
        self.tracks
            .iter()
            .flat_map(|t| t.records.iter().map(move |r| (t.track, r)))
    }

    fn args_json(args: &[(&'static str, u64)], out: &mut String) {
        out.push('{');
        for (i, (k, v)) in args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            crate::json_escape(k, out);
            out.push_str(&format!("\":{v}"));
        }
        out.push('}');
    }

    /// Deterministic JSON: tracks sorted by id, records in program
    /// order, no wall-clock content anywhere.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"tracks\":[");
        for (i, t) in self.tracks.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"track\":{},\"dropped\":{},\"records\":[",
                t.track, t.dropped
            ));
            for (j, r) in t.records.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                match r {
                    TraceRecord::Span {
                        name,
                        start,
                        end,
                        args,
                    } => {
                        s.push_str("{\"kind\":\"span\",\"name\":\"");
                        crate::json_escape(name, &mut s);
                        s.push_str(&format!("\",\"start\":{start},\"end\":{end},\"args\":"));
                        Self::args_json(args, &mut s);
                        s.push('}');
                    }
                    TraceRecord::Point { name, tick, args } => {
                        s.push_str("{\"kind\":\"instant\",\"name\":\"");
                        crate::json_escape(name, &mut s);
                        s.push_str(&format!("\",\"tick\":{tick},\"args\":"));
                        Self::args_json(args, &mut s);
                        s.push('}');
                    }
                }
            }
            s.push_str("]}");
        }
        s.push_str("]}");
        s
    }

    /// Chrome Trace Event format (JSON object form), loadable in
    /// Perfetto and `chrome://tracing`. Tracks map to threads of a
    /// single process: `tid` is the track's index in sorted-id order
    /// (kept small so the JSON never exceeds 2^53), the real 64-bit
    /// track id lives in the thread name and a string arg. Logical
    /// ticks are emitted as the `ts` microsecond field verbatim.
    pub fn to_chrome_trace(&self) -> String {
        let mut s = String::from("{\"traceEvents\":[");
        s.push_str("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"prlc\"}}");
        for (tid, t) in self.tracks.iter().enumerate() {
            let label = if t.track == MAIN_TRACK {
                "main".to_string()
            } else {
                format!("run {}", t.track)
            };
            s.push_str(&format!(
                ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{label}\"}}}}"
            ));
        }
        for (tid, t) in self.tracks.iter().enumerate() {
            for r in &t.records {
                s.push(',');
                match r {
                    TraceRecord::Span {
                        name,
                        start,
                        end,
                        args,
                    } => {
                        s.push_str("{\"name\":\"");
                        crate::json_escape(name, &mut s);
                        s.push_str(&format!(
                            "\",\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{start},\"dur\":{},\
                             \"args\":",
                            end.saturating_sub(*start)
                        ));
                        Self::args_json(args, &mut s);
                        s.push('}');
                    }
                    TraceRecord::Point { name, tick, args } => {
                        s.push_str("{\"name\":\"");
                        crate::json_escape(name, &mut s);
                        s.push_str(&format!(
                            "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{tid},\"ts\":{tick},\
                             \"args\":"
                        ));
                        Self::args_json(args, &mut s);
                        s.push('}');
                    }
                }
            }
        }
        s.push_str("]}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The enable flag and recorder are process-global: serialise tests.
    static TEST_GUARD: Mutex<()> = Mutex::new(());

    fn guarded() -> std::sync::MutexGuard<'static, ()> {
        TEST_GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = guarded();
        disable();
        reset();
        record_instant("linalg.rref.pivot", 1, &[]);
        record_span("net.collect.session", 0, 2, &[]);
        assert!(snapshot().is_empty());
    }

    #[test]
    fn records_land_on_the_current_track_in_order() {
        let _g = guarded();
        enable();
        reset();
        record_instant("linalg.rref.pivot", 1, &[("col", 0)]);
        {
            let _t = track(99);
            record_span("net.collect.session", 2, 5, &[("blocks", 3)]);
            record_instant("linalg.rref.pivot", 7, &[]);
        }
        record_instant("linalg.rref.redundant_row", 4, &[]);
        let snap = snapshot();
        assert_eq!(snap.tracks.len(), 2);
        assert_eq!(snap.tracks[0].track, MAIN_TRACK);
        let names: Vec<_> = snap.tracks[0].records.iter().map(|r| r.name()).collect();
        assert_eq!(names, ["linalg.rref.pivot", "linalg.rref.redundant_row"]);
        assert_eq!(snap.tracks[1].track, 99);
        assert_eq!(snap.tracks[1].records.len(), 2);
        assert_eq!(snap.tracks[1].records[0].tick(), 2);
        assert_eq!(snap.tracks[1].records[0].arg("blocks"), Some(3));
        assert_eq!(snap.names().len(), 3);
        disable();
        reset();
    }

    #[test]
    fn per_track_capacity_counts_drops() {
        let _g = guarded();
        enable();
        reset();
        {
            let _t = track(7);
            for i in 0..(TRACK_CAPACITY as u64 + 5) {
                record_instant("linalg.rref.pivot", i, &[]);
            }
        }
        let snap = snapshot();
        assert_eq!(snap.tracks[0].records.len(), TRACK_CAPACITY);
        assert_eq!(snap.tracks[0].dropped, 5);
        reset();
        assert!(snapshot().is_empty());
        disable();
    }

    #[test]
    fn span_end_clamped_to_start() {
        let _g = guarded();
        enable();
        reset();
        record_span("net.collect.session", 9, 3, &[]);
        let snap = snapshot();
        match &snap.tracks[0].records[0] {
            TraceRecord::Span { start, end, .. } => {
                assert_eq!((*start, *end), (9, 9));
            }
            other => panic!("expected span, got {other:?}"),
        }
        disable();
        reset();
    }

    #[test]
    fn json_export_shapes() {
        let _g = guarded();
        enable();
        reset();
        {
            let _t = track(5);
            trace_span!("net.collect.session", 0u64, 4u64, blocks: 2u64);
            trace_instant!("linalg.rref.pivot", 1u64, col: 0u64);
        }
        let snap = snapshot();
        let json = snap.to_json();
        assert!(json.starts_with("{\"tracks\":[{\"track\":5,\"dropped\":0,"));
        assert!(json.contains(
            "{\"kind\":\"span\",\"name\":\"net.collect.session\",\"start\":0,\"end\":4,\
             \"args\":{\"blocks\":2}}"
        ));
        assert!(json.contains(
            "{\"kind\":\"instant\",\"name\":\"linalg.rref.pivot\",\"tick\":1,\
             \"args\":{\"col\":0}}"
        ));
        let chrome = snap.to_chrome_trace();
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.contains("\"ph\":\"M\""));
        assert!(chrome.contains("\"ph\":\"X\"") && chrome.contains("\"dur\":4"));
        assert!(chrome.contains("\"ph\":\"i\"") && chrome.contains("\"s\":\"t\""));
        assert!(chrome.contains("\"name\":\"run 5\""));
        assert!(chrome.ends_with("]}"));
        disable();
        reset();
    }

    #[test]
    fn track_guard_restores_previous_track() {
        let _g = guarded();
        enable();
        reset();
        {
            let _outer = track(1);
            {
                let _inner = track(2);
                record_instant("linalg.rref.pivot", 0, &[]);
            }
            record_instant("linalg.rref.pivot", 1, &[]);
        }
        let snap = snapshot();
        let ids: Vec<u64> = snap.tracks.iter().map(|t| t.track).collect();
        assert_eq!(ids, [1, 2]);
        disable();
        reset();
    }
}
