//! Dense linear algebra over binary-extension Galois fields.
//!
//! This crate supplies the decoding machinery of *priority random linear
//! codes* (Lin–Li–Liang, ICDCS 2007, Sec. 3.2):
//!
//! * [`Matrix`] — a dense row-major matrix over any [`prlc_gf::GfElem`]
//!   field, with batch [Gauss–Jordan elimination](elim::rref) to reduced
//!   row-echelon form, [rank](elim::rank()), [inversion](elim::invert()) and
//!   [linear solving](elim::solve).
//! * [`ProgressiveRref`] — the paper's *progressive* decoder: coded blocks
//!   arrive one at a time, each is folded into a maintained RREF, and the
//!   longest decodable prefix of unknowns is available after every
//!   insertion ("the decoding process starts as soon as the first coded
//!   block has arrived").
//!
//! The two paths are implemented independently and cross-checked against
//! each other in the test suite.
//!
//! # Example: partial decoding, Fig. 2 of the paper
//!
//! ```
//! use prlc_gf::{Gf256, GfElem};
//! use prlc_linalg::ProgressiveRref;
//!
//! // Three unknowns; the first coded block touches only x1, so x1 is
//! // decoded immediately even though the system is underdetermined.
//! let mut dec: ProgressiveRref<Gf256, Vec<Gf256>> = ProgressiveRref::new(3);
//! let coeffs = vec![Gf256::from_index(7), Gf256::ZERO, Gf256::ZERO];
//! let payload = vec![Gf256::from_index(7) * Gf256::from_index(0x42)];
//! dec.insert(coeffs, payload);
//! assert_eq!(dec.decoded_prefix(), 1);
//! assert_eq!(dec.recovered(0).unwrap()[0], Gf256::from_index(0x42));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coeffrow;
pub mod elim;
pub mod matrix;
pub mod payload;
pub mod progressive;

pub use coeffrow::{CoeffRep, CoeffRow};
pub use elim::{invert, rank, rref, solve, RrefResult, SolveOutcome};
pub use matrix::Matrix;
pub use payload::RowPayload;
pub use progressive::{InsertOutcome, ProgressiveRref};

#[cfg(test)]
mod proptests;
