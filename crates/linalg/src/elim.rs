//! Batch Gaussian and Gauss–Jordan elimination.
//!
//! These are the classical whole-matrix algorithms. The paper's decoder
//! processes blocks *incrementally* (see [`crate::ProgressiveRref`]); the
//! batch path here serves as the independent reference implementation the
//! progressive decoder is validated against, and provides rank, inverse
//! and solve utilities used across the workspace.

use prlc_gf::GfElem;

use crate::matrix::Matrix;

/// The result of reducing a matrix to reduced row-echelon form.
#[derive(Clone)]
pub struct RrefResult<F> {
    /// The matrix in reduced row-echelon form.
    pub matrix: Matrix<F>,
    /// The rank (number of pivots).
    pub rank: usize,
    /// The pivot column of each pivot row, in row order (strictly
    /// increasing).
    pub pivot_cols: Vec<usize>,
}

impl<F: GfElem> std::fmt::Debug for RrefResult<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RrefResult")
            .field("matrix", &self.matrix)
            .field("rank", &self.rank)
            .field("pivot_cols", &self.pivot_cols)
            .finish()
    }
}

/// Reduces `m` to reduced row-echelon form with Gauss–Jordan elimination.
///
/// This is the transformation of Fig. 2(c) in the paper: every pivot is 1,
/// every pivot column is zero outside its pivot row, zero rows sink to the
/// bottom.
pub fn rref<F: GfElem>(m: &Matrix<F>) -> RrefResult<F> {
    let mut a = m.clone();
    let (rows, cols) = (a.rows(), a.cols());
    let mut pivot_cols = Vec::new();
    let mut pivot_row = 0usize;

    for col in 0..cols {
        if pivot_row == rows {
            break;
        }
        // Find a row at or below pivot_row with a nonzero entry in col.
        let Some(src) = (pivot_row..rows).find(|&r| !a[(r, col)].is_zero()) else {
            continue;
        };
        a.swap_rows(pivot_row, src);

        // Normalise the pivot to 1.
        let inv = a[(pivot_row, col)]
            .gf_inv()
            .expect("pivot is nonzero by construction");
        a.scale_row(pivot_row, inv, col);

        // Eliminate the pivot column from every other row (Gauss–Jordan:
        // above *and* below, unlike plain Gaussian elimination). The
        // disjoint row-pair borrow lets the kernel read the pivot row in
        // place — no per-pivot clone.
        for r in 0..rows {
            if r == pivot_row {
                continue;
            }
            let factor = a[(r, col)];
            if factor.is_zero() {
                continue;
            }
            a.row_axpy(r, factor, pivot_row, col);
        }

        pivot_cols.push(col);
        pivot_row += 1;
    }

    RrefResult {
        rank: pivot_cols.len(),
        matrix: a,
        pivot_cols,
    }
}

/// The rank of `m`.
pub fn rank<F: GfElem>(m: &Matrix<F>) -> usize {
    rref(m).rank
}

/// Inverts a square matrix, or returns `None` if it is singular.
///
/// # Panics
///
/// Panics if `m` is not square.
pub fn invert<F: GfElem>(m: &Matrix<F>) -> Option<Matrix<F>> {
    assert!(m.is_square(), "invert requires a square matrix");
    let n = m.rows();
    let aug = m.augment(&Matrix::identity(n));
    let red = rref(&aug);
    if red.rank < n || red.pivot_cols.iter().take(n).copied().ne(0..n) {
        return None;
    }
    let mut inv = Matrix::zero(n, n);
    for r in 0..n {
        for c in 0..n {
            inv[(r, c)] = red.matrix[(r, n + c)];
        }
    }
    Some(inv)
}

/// The outcome of solving the linear system `A x = b`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveOutcome<F> {
    /// A unique solution exists.
    Unique(Vec<F>),
    /// The system is consistent but has free variables (more unknowns
    /// than independent equations) — exactly the situation where the
    /// paper's *partial* decoding applies.
    Underdetermined,
    /// No solution exists (inconsistent equations).
    Inconsistent,
}

/// Solves `A x = b`.
///
/// # Panics
///
/// Panics if `b.len() != a.rows()`.
pub fn solve<F: GfElem>(a: &Matrix<F>, b: &[F]) -> SolveOutcome<F> {
    assert_eq!(b.len(), a.rows(), "solve: rhs length mismatch");
    let rhs = Matrix::from_rows(b.iter().map(|&v| vec![v]).collect());
    let n = a.cols();
    let red = rref(&a.augment(&rhs));

    // A pivot in the augmented column means 0 = 1: inconsistent.
    if red.pivot_cols.contains(&n) {
        return SolveOutcome::Inconsistent;
    }
    if red.rank < n {
        return SolveOutcome::Underdetermined;
    }
    // rank == n and all pivots are in the coefficient part, so rows
    // 0..n of the RREF read x_i = rhs_i directly.
    let x = (0..n).map(|r| red.matrix[(r, n)]).collect();
    SolveOutcome::Unique(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prlc_gf::Gf256;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn g(v: usize) -> Gf256 {
        Gf256::from_index(v)
    }

    #[test]
    fn rref_produces_rref() {
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..20 {
            let m = Matrix::<Gf256>::random(5, 7, &mut rng);
            let r = rref(&m);
            assert!(r.matrix.is_rref(), "{:?}", r.matrix);
            assert!(r.rank <= 5);
            // Pivot columns strictly increase.
            assert!(r.pivot_cols.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn rref_of_identity_is_identity() {
        let i = Matrix::<Gf256>::identity(4);
        let r = rref(&i);
        assert!(r.matrix.is_identity());
        assert_eq!(r.rank, 4);
        assert_eq!(r.pivot_cols, vec![0, 1, 2, 3]);
    }

    #[test]
    fn rank_of_zero_matrix_is_zero() {
        let z = Matrix::<Gf256>::zero(3, 3);
        assert_eq!(rank(&z), 0);
    }

    #[test]
    fn rank_of_duplicated_rows() {
        let m = Matrix::from_rows(vec![
            vec![g(1), g(2), g(3)],
            vec![g(1), g(2), g(3)],
            vec![g(5), g(6), g(7)],
        ]);
        assert_eq!(rank(&m), 2);
    }

    #[test]
    fn invert_roundtrip_random() {
        // Random GF(256) square matrices are nonsingular w.p. ~0.996;
        // retry until we find one, then check A * A^-1 == I.
        let mut rng = StdRng::seed_from_u64(11);
        let mut inverted = 0;
        while inverted < 10 {
            let m = Matrix::<Gf256>::random(6, 6, &mut rng);
            if let Some(inv) = invert(&m) {
                assert!((&m * &inv).is_identity());
                assert!((&inv * &m).is_identity());
                inverted += 1;
            }
        }
    }

    #[test]
    fn invert_singular_returns_none() {
        let m = Matrix::from_rows(vec![
            vec![g(1), g(2)],
            vec![g(1), g(2)], // duplicate row
        ]);
        assert_eq!(invert(&m), None);
        let z = Matrix::<Gf256>::zero(2, 2);
        assert_eq!(invert(&z), None);
    }

    #[test]
    fn rref_of_paper_fig1_slc_example() {
        // Fig. 1(b): SLC with level 1 = {x1}, level 2 = {x2, x3}.
        // A level-1 row [b, 0, 0] decodes x1 on its own.
        let m = Matrix::from_rows(vec![vec![g(0x42), g(0), g(0)]]);
        let r = rref(&m);
        assert_eq!(r.rank, 1);
        assert_eq!(r.pivot_cols, vec![0]);
        assert_eq!(r.matrix[(0, 0)], Gf256::ONE);
    }

    #[test]
    fn solve_unique_system() {
        let mut rng = StdRng::seed_from_u64(12);
        loop {
            let a = Matrix::<Gf256>::random(5, 5, &mut rng);
            if invert(&a).is_none() {
                continue;
            }
            let x: Vec<Gf256> = (0..5).map(|_| Gf256::random(&mut rng)).collect();
            let b = a.mul_vec(&x);
            assert_eq!(solve(&a, &b), SolveOutcome::Unique(x));
            break;
        }
    }

    #[test]
    fn solve_overdetermined_consistent() {
        // 3 equations, 2 unknowns, consistent.
        let a = Matrix::from_rows(vec![vec![g(1), g(0)], vec![g(0), g(1)], vec![g(1), g(1)]]);
        let x = vec![g(7), g(9)];
        let b = a.mul_vec(&x);
        assert_eq!(solve(&a, &b), SolveOutcome::Unique(x));
    }

    #[test]
    fn solve_underdetermined() {
        let a = Matrix::from_rows(vec![vec![g(1), g(2), g(3)]]);
        let b = vec![g(5)];
        assert_eq!(solve(&a, &b), SolveOutcome::Underdetermined);
    }

    #[test]
    fn solve_inconsistent() {
        let a = Matrix::from_rows(vec![vec![g(1), g(2)], vec![g(1), g(2)]]);
        // Same lhs, different rhs -> inconsistent.
        let b = vec![g(5), g(6)];
        assert_eq!(solve(&a, &b), SolveOutcome::Inconsistent);
    }

    #[test]
    fn rank_is_invariant_under_row_shuffle() {
        let mut rng = StdRng::seed_from_u64(13);
        let m = Matrix::<Gf256>::random(6, 4, &mut rng);
        let mut shuffled = m.clone();
        shuffled.swap_rows(0, 5);
        shuffled.swap_rows(2, 3);
        assert_eq!(rank(&m), rank(&shuffled));
    }

    #[test]
    fn rref_identical_for_row_permutations() {
        // Sec. 3.2: "the RREFs of two matrices are identical, if they
        // differ only in row orders".
        let mut rng = StdRng::seed_from_u64(14);
        let m = Matrix::<Gf256>::random(5, 5, &mut rng);
        let mut p = m.clone();
        p.swap_rows(0, 4);
        p.swap_rows(1, 2);
        assert_eq!(rref(&m).matrix, rref(&p).matrix);
    }
}
