//! A dense row-major matrix over a Galois field.

use std::fmt;
use std::ops::{Index, IndexMut, Mul};

use prlc_gf::{kernel, GfElem};
use rand::Rng;

/// A dense `rows × cols` matrix over the field `F`.
///
/// Used for coefficient matrices of random linear codes, for the worked
/// examples of Fig. 1/2 of the paper, and as the reference implementation
/// that the progressive decoder is validated against.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Matrix<F> {
    rows: usize,
    cols: usize,
    data: Vec<F>,
}

impl<F: GfElem> Matrix<F> {
    /// An all-zero `rows × cols` matrix.
    pub fn zero(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![F::ZERO; rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m[(i, i)] = F::ONE;
        }
        m
    }

    /// Builds a matrix from rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length, or if `rows`
    /// is empty (an empty matrix has no well-defined column count; use
    /// [`Matrix::zero`] with explicit dimensions instead).
    pub fn from_rows(rows: Vec<Vec<F>>) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in &rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// A matrix with independent uniformly random entries.
    pub fn random<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let data = (0..rows * cols).map(|_| F::random(rng)).collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[F] {
        assert!(r < self.rows, "row {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [F] {
        assert!(r < self.rows, "row {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterates over the rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[F]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Swaps two rows in place.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.rows && b < self.rows, "row index out of bounds");
        if a == b {
            return;
        }
        let (lo, hi) = (a.min(b), a.max(b));
        let (top, bottom) = self.data.split_at_mut(hi * self.cols);
        top[lo * self.cols..(lo + 1) * self.cols].swap_with_slice(&mut bottom[..self.cols]);
    }

    /// Disjoint mutable borrows of two *distinct* rows, in argument
    /// order. This is the aliasing-safe primitive behind the row
    /// arithmetic helpers ([`Matrix::row_axpy`]), obtained with
    /// `split_at_mut` — no row is ever cloned.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds or if `a == b`.
    pub fn row_pair_mut(&mut self, a: usize, b: usize) -> (&mut [F], &mut [F]) {
        assert!(a < self.rows && b < self.rows, "row index out of bounds");
        assert_ne!(a, b, "row_pair_mut requires distinct rows");
        let cols = self.cols;
        let (lo, hi) = (a.min(b), a.max(b));
        let (top, bottom) = self.data.split_at_mut(hi * cols);
        let lo_row = &mut top[lo * cols..(lo + 1) * cols];
        let hi_row = &mut bottom[..cols];
        if a < b {
            (lo_row, hi_row)
        } else {
            (hi_row, lo_row)
        }
    }

    /// `row[dst][from_col..] += factor * row[src][from_col..]` through the
    /// dispatched [`kernel`] — the elimination inner loop.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds, if `dst == src`, or if
    /// `from_col > self.cols()`.
    pub fn row_axpy(&mut self, dst: usize, factor: F, src: usize, from_col: usize) {
        let (d, s) = self.row_pair_mut(dst, src);
        kernel::axpy(&mut d[from_col..], factor, &s[from_col..]);
    }

    /// `row[r][from_col..] *= factor` through the dispatched [`kernel`].
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds or `from_col > self.cols()`.
    pub fn scale_row(&mut self, r: usize, factor: F, from_col: usize) {
        kernel::scale_slice(&mut self.row_mut(r)[from_col..], factor);
    }

    /// Appends the columns of `other` to the right of `self`
    /// (the augmented matrix `[self | other]`).
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn augment(&self, other: &Matrix<F>) -> Matrix<F> {
        assert_eq!(self.rows, other.rows, "augment: row count mismatch");
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Matrix {
            rows: self.rows,
            cols,
            data,
        }
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix<F> {
        let mut t = Matrix::zero(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[F]) -> Vec<F> {
        assert_eq!(x.len(), self.cols, "mul_vec dimension mismatch");
        (0..self.rows)
            .map(|r| kernel::dot(self.row(r), x))
            .collect()
    }

    /// Number of nonzero entries.
    pub fn nonzeros(&self) -> usize {
        self.data.iter().filter(|v| !v.is_zero()).count()
    }

    /// Whether this is the identity matrix.
    pub fn is_identity(&self) -> bool {
        if !self.is_square() {
            return false;
        }
        for r in 0..self.rows {
            for c in 0..self.cols {
                let want = if r == c { F::ONE } else { F::ZERO };
                if self[(r, c)] != want {
                    return false;
                }
            }
        }
        true
    }

    /// Whether the matrix is in reduced row-echelon form: each pivot is 1,
    /// is the only nonzero entry in its column, pivots move strictly right
    /// as rows descend, and zero rows are at the bottom.
    pub fn is_rref(&self) -> bool {
        let mut last_pivot: Option<usize> = None;
        let mut seen_zero_row = false;
        for r in 0..self.rows {
            let row = self.row(r);
            match row.iter().position(|v| !v.is_zero()) {
                None => seen_zero_row = true,
                Some(p) => {
                    if seen_zero_row {
                        return false; // nonzero row below a zero row
                    }
                    if row[p] != F::ONE {
                        return false;
                    }
                    if let Some(lp) = last_pivot {
                        if p <= lp {
                            return false;
                        }
                    }
                    // the pivot column must be zero everywhere else
                    for r2 in 0..self.rows {
                        if r2 != r && !self[(r2, p)].is_zero() {
                            return false;
                        }
                    }
                    last_pivot = Some(p);
                }
            }
        }
        true
    }
}

impl<F: GfElem> Index<(usize, usize)> for Matrix<F> {
    type Output = F;

    fn index(&self, (r, c): (usize, usize)) -> &F {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl<F: GfElem> IndexMut<(usize, usize)> for Matrix<F> {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut F {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl<F: GfElem> Mul for &Matrix<F> {
    type Output = Matrix<F>;

    /// Matrix product.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions differ.
    fn mul(self, rhs: &Matrix<F>) -> Matrix<F> {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        let mut out: Matrix<F> = Matrix::zero(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a.is_zero() {
                    continue;
                }
                kernel::axpy(out.row_mut(r), a, rhs.row(k));
            }
        }
        out
    }
}

impl<F: GfElem> fmt::Debug for Matrix<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  [")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>4x}", self[(r, c)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

impl<F: GfElem> fmt::Display for Matrix<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prlc_gf::Gf256;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn g(v: usize) -> Gf256 {
        Gf256::from_index(v)
    }

    #[test]
    fn identity_is_identity() {
        let i = Matrix::<Gf256>::identity(4);
        assert!(i.is_identity());
        assert!(i.is_rref());
        assert_eq!(i.nonzeros(), 4);
    }

    #[test]
    fn from_rows_roundtrip() {
        let m = Matrix::from_rows(vec![vec![g(1), g(2)], vec![g(3), g(4)]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m[(0, 1)], g(2));
        assert_eq!(m.row(1), &[g(3), g(4)]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(vec![vec![g(1)], vec![g(1), g(2)]]);
    }

    #[test]
    fn mul_by_identity_is_noop() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Matrix::<Gf256>::random(3, 5, &mut rng);
        let i3 = Matrix::identity(3);
        let i5 = Matrix::identity(5);
        assert_eq!(&(&i3 * &m), &m);
        assert_eq!(&(&m * &i5), &m);
    }

    #[test]
    fn matmul_associative() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Matrix::<Gf256>::random(3, 4, &mut rng);
        let b = Matrix::<Gf256>::random(4, 2, &mut rng);
        let c = Matrix::<Gf256>::random(2, 5, &mut rng);
        assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
    }

    #[test]
    fn transpose_involutive() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = Matrix::<Gf256>::random(4, 7, &mut rng);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn mul_vec_matches_matmul() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = Matrix::<Gf256>::random(3, 4, &mut rng);
        let x: Vec<Gf256> = (0..4).map(|_| Gf256::random(&mut rng)).collect();
        let as_col = Matrix::from_rows(x.iter().map(|&v| vec![v]).collect());
        let prod = &m * &as_col;
        let mv = m.mul_vec(&x);
        for r in 0..3 {
            assert_eq!(prod[(r, 0)], mv[r]);
        }
    }

    #[test]
    fn swap_rows_swaps() {
        let mut m = Matrix::from_rows(vec![vec![g(1), g(2)], vec![g(3), g(4)]]);
        m.swap_rows(0, 1);
        assert_eq!(m.row(0), &[g(3), g(4)]);
        assert_eq!(m.row(1), &[g(1), g(2)]);
        m.swap_rows(1, 1); // no-op
        assert_eq!(m.row(1), &[g(1), g(2)]);
    }

    #[test]
    fn augment_concatenates() {
        let a = Matrix::from_rows(vec![vec![g(1)], vec![g(2)]]);
        let b = Matrix::from_rows(vec![vec![g(3), g(4)], vec![g(5), g(6)]]);
        let ab = a.augment(&b);
        assert_eq!(ab.cols(), 3);
        assert_eq!(ab.row(0), &[g(1), g(3), g(4)]);
        assert_eq!(ab.row(1), &[g(2), g(5), g(6)]);
    }

    #[test]
    fn is_rref_detects_violations() {
        // Pivot not 1.
        let m = Matrix::from_rows(vec![vec![g(2), g(0)], vec![g(0), g(1)]]);
        assert!(!m.is_rref());
        // Nonzero above a pivot.
        let m = Matrix::from_rows(vec![vec![g(1), g(5)], vec![g(0), g(1)]]);
        assert!(!m.is_rref());
        // Zero row above nonzero row.
        let m = Matrix::from_rows(vec![vec![g(0), g(0)], vec![g(0), g(1)]]);
        assert!(!m.is_rref());
        // Proper RREF with a free column.
        let m = Matrix::from_rows(vec![vec![g(1), g(9), g(0)], vec![g(0), g(0), g(1)]]);
        assert!(m.is_rref());
    }

    #[test]
    fn debug_render_is_nonempty() {
        let m = Matrix::<Gf256>::identity(2);
        let s = format!("{m:?}");
        assert!(s.contains("Matrix 2x2"));
    }
}
