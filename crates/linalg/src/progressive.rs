//! The progressive Gauss–Jordan (RREF) partial decoder.
//!
//! Implements the decoding algorithm of Sec. 3.2 of the paper: "As each
//! new coded block is accumulated, the coding coefficients of the coded
//! block are appended to the current decoding matrix. A pass of
//! Gauss–Jordan elimination is performed on the existing decoding matrix —
//! with identical operations performed on the data blocks as well — such
//! that the matrix is reduced to RREF."
//!
//! The machine maintains the invariant that its stored rows are always in
//! reduced row-echelon form (up to row order). An unknown `x_c` is
//! *decoded* exactly when the pivot row owning column `c` has a single
//! nonzero coefficient: in RREF a pivot row's off-pivot nonzeros can only
//! sit in non-pivot (free) columns, so any such entry means `x_c` still
//! depends on an undetermined variable.
//!
//! # Performance
//!
//! The decoding-curve experiments of Sec. 5 run this machine with
//! `width = 1000` for thousands of insertions per run, so the hot paths
//! are engineered:
//!
//! * rows are stored as [`CoeffRow`]s: dense rows track their *support*
//!   (exclusive upper bound of the nonzero region — for PLC a level-`k`
//!   row has support `b_k`) and all row operations touch only
//!   `pivot..support`, while sparse rows store only their `(index,
//!   value)` pairs so elimination costs `O(nnz)` per colliding pivot;
//! * the nonzero count per row is maintained incrementally so decoded
//!   queries are O(1);
//! * dense bulk operations route through the dispatched
//!   [`kernel`](prlc_gf::kernel) (product table or SIMD nibble-shuffle
//!   for GF(2⁸), selected once at startup), and payloads are mirrored
//!   through the same kernel calls over their contiguous symbol planes.

use prlc_gf::GfElem;

use crate::coeffrow::CoeffRow;
use crate::matrix::Matrix;
use crate::payload::RowPayload;

/// Outcome of inserting one coded block into the decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InsertOutcome {
    /// The block increased the rank; its pivot landed in this column.
    Innovative {
        /// The column of the new pivot.
        pivot: usize,
    },
    /// The block was a linear combination of already-held blocks and was
    /// discarded.
    Redundant,
}

impl InsertOutcome {
    /// Whether the insertion increased the decoder's rank.
    pub fn is_innovative(self) -> bool {
        matches!(self, InsertOutcome::Innovative { .. })
    }
}

#[derive(Clone)]
struct Row<F, P> {
    coeffs: CoeffRow<F>,
    payload: P,
    pivot: usize,
    /// Number of nonzero coefficients, maintained incrementally.
    nonzeros: usize,
}

// Hand-written (not derived) because `CoeffRow`'s logical `Debug`
// requires `F: GfElem`, a bound derive cannot infer.
impl<F: GfElem, P: std::fmt::Debug> std::fmt::Debug for Row<F, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Row")
            .field("coeffs", &self.coeffs)
            .field("payload", &self.payload)
            .field("pivot", &self.pivot)
            .field("nonzeros", &self.nonzeros)
            .finish()
    }
}

/// An incremental Gauss–Jordan elimination machine over `width` unknowns.
///
/// `P` is the payload mirrored through every row operation: use
/// `Vec<F>` to decode real data blocks, or `()` to track decodability
/// only. See [`RowPayload`].
#[derive(Clone)]
pub struct ProgressiveRref<F, P = ()> {
    width: usize,
    rows: Vec<Row<F, P>>,
    /// Column -> index into `rows` of the pivot row owning that column.
    pivot_of_col: Vec<Option<usize>>,
    /// Columns whose unknown is fully determined.
    solved: Vec<bool>,
    solved_count: usize,
    /// First column not yet solved (the decoded prefix length). Monotone:
    /// solved rows can never become unsolved.
    prefix: usize,
    inserted: usize,
    /// Columns whose unknown became determined during the most recent
    /// [`insert`](Self::insert), ascending. Cleared on every insert.
    last_solved: Vec<usize>,
}

// Hand-written for the same `F: GfElem` bound reason as `Row`.
impl<F: GfElem, P: std::fmt::Debug> std::fmt::Debug for ProgressiveRref<F, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressiveRref")
            .field("width", &self.width)
            .field("rows", &self.rows)
            .field("pivot_of_col", &self.pivot_of_col)
            .field("solved", &self.solved)
            .field("solved_count", &self.solved_count)
            .field("prefix", &self.prefix)
            .field("inserted", &self.inserted)
            .field("last_solved", &self.last_solved)
            .finish()
    }
}

impl<F: GfElem, P: RowPayload<F>> ProgressiveRref<F, P> {
    /// Creates a decoder for a system with `width` unknowns.
    pub fn new(width: usize) -> Self {
        ProgressiveRref {
            width,
            rows: Vec::new(),
            pivot_of_col: vec![None; width],
            solved: vec![false; width],
            solved_count: 0,
            prefix: 0,
            inserted: 0,
            last_solved: Vec::new(),
        }
    }

    /// The number of unknowns.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The current rank (number of innovative blocks held).
    pub fn rank(&self) -> usize {
        self.rows.len()
    }

    /// Total number of blocks offered via [`insert`](Self::insert),
    /// including redundant ones.
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    /// Columns whose unknown became determined during the most recent
    /// [`insert`](Self::insert), in ascending order. Empty when the last
    /// insert was redundant or solved nothing new.
    pub fn newly_solved(&self) -> &[usize] {
        &self.last_solved
    }

    /// Number of unknowns currently determined (not necessarily a prefix).
    pub fn decoded_count(&self) -> usize {
        self.solved_count
    }

    /// Length of the longest decoded *prefix* of unknowns: the largest
    /// `j` such that `x_0 … x_{j-1}` are all determined.
    ///
    /// Under PLC, mapping this through the level boundaries `b_k` yields
    /// the number of decoded priority levels.
    pub fn decoded_prefix(&self) -> usize {
        self.prefix
    }

    /// Whether unknown `col` is determined.
    ///
    /// # Panics
    ///
    /// Panics if `col >= width`.
    pub fn is_decoded(&self, col: usize) -> bool {
        assert!(col < self.width, "column {col} out of range");
        self.solved[col]
    }

    /// Whether all unknowns are determined.
    pub fn is_complete(&self) -> bool {
        self.solved_count == self.width
    }

    /// The recovered payload for unknown `col`, if it is determined.
    ///
    /// When `P = Vec<F>`, this is the decoded source block itself (the
    /// pivot row has been normalised, so the payload *is* the solution).
    ///
    /// # Panics
    ///
    /// Panics if `col >= width`.
    pub fn recovered(&self, col: usize) -> Option<&P> {
        assert!(col < self.width, "column {col} out of range");
        if !self.solved[col] {
            return None;
        }
        let r = self.pivot_of_col[col].expect("solved column has a pivot row");
        Some(&self.rows[r].payload)
    }

    /// Inserts one coded block: `coeffs` are its coding coefficients over
    /// the `width` unknowns, `payload` the data mirrored through the
    /// elimination.
    ///
    /// Runs one incremental pass of Gauss–Jordan elimination, after which
    /// the held rows are again in RREF (up to row order).
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != width`.
    pub fn insert(&mut self, coeffs: Vec<F>, payload: P) -> InsertOutcome {
        self.insert_row(CoeffRow::from_dense(coeffs), payload)
    }

    /// Inserts one coded block given as a [`CoeffRow`] in either
    /// representation — the sparse-aware form of [`insert`](Self::insert).
    ///
    /// The elimination touches only stored nonzeros: pivot lookup walks
    /// [`CoeffRow::first_nonzero_at_or_after`] and row updates go through
    /// [`CoeffRow::axpy_from`], so a sparse row with `d` nonzeros costs
    /// `O(d)` per colliding pivot instead of `O(width)`. Dense rows take
    /// byte-for-byte the same kernel calls as before `CoeffRow` existed.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != width`.
    pub fn insert_row(&mut self, mut coeffs: CoeffRow<F>, mut payload: P) -> InsertOutcome {
        assert_eq!(coeffs.len(), self.width, "coefficient width mismatch");
        self.inserted += 1;
        self.last_solved.clear();

        // Tighten a dense row's support before eliminating, so kernel
        // call ranges match the historical dense implementation exactly.
        coeffs.normalize_support();

        // Fill-in accounting: nonzeros the forward pass *adds* to this
        // row before it is stored. Logical, so identical across
        // representations; only computed when observability is on.
        let original_nnz = if prlc_obs::enabled() { coeffs.nnz() } else { 0 };

        // Forward reduction: eliminate every coefficient that collides
        // with an existing pivot, across the *whole* support — entries in
        // pivot columns to the right of the eventual new pivot must also
        // be cleared, or the stored rows would leave RREF. Scanning left
        // to right is sound because a pivot row is zero left of its pivot,
        // so subtracting it never disturbs columns already passed.
        let mut col = 0usize;
        let mut pivot_col = None;
        while let Some(c) = coeffs.first_nonzero_at_or_after(col) {
            match self.pivot_of_col[c] {
                Some(r) => {
                    let prow = &self.rows[r];
                    let factor = coeffs.get(c);
                    coeffs.axpy_from(c, factor, &prow.coeffs);
                    payload.payload_axpy(&prow.payload, factor);
                    debug_assert!(coeffs.get(c).is_zero());
                }
                None => {
                    if pivot_col.is_none() {
                        pivot_col = Some(c);
                    }
                }
            }
            col = c + 1;
        }

        let Some(pc) = pivot_col else {
            if prlc_obs::enabled() {
                prlc_obs::counter!("linalg.rref.rows").incr();
                prlc_obs::counter!("linalg.rref.redundant").incr();
            }
            if prlc_obs::trace::enabled() {
                // Cause: the reduced row vanished, so the offered block was
                // a linear combination of the rows already held.
                prlc_obs::trace_instant!(
                    "linalg.rref.redundant_row",
                    self.inserted as u64,
                    rank: self.rows.len() as u64,
                );
            }
            return InsertOutcome::Redundant;
        };

        // Normalise the pivot to 1.
        let inv = coeffs.get(pc).gf_inv().expect("pivot entry is nonzero");
        coeffs.scale_from(pc, inv);
        payload.payload_scale(inv);

        // Back-eliminate column `pc` from every existing row that has a
        // nonzero entry there, restoring the RREF invariant.
        let new_idx = self.rows.len();
        for row in self.rows.iter_mut() {
            let factor = row.coeffs.get(pc);
            if factor.is_zero() {
                continue;
            }
            let before = row.coeffs.count_nonzeros_from(pc);
            row.coeffs.axpy_from(pc, factor, &coeffs);
            let after = row.coeffs.count_nonzeros_from(pc);
            row.payload.payload_axpy(&payload, factor);
            row.nonzeros = row.nonzeros - before + after;
            debug_assert!(row.nonzeros >= 1);
            if row.nonzeros == 1 && !self.solved[row.pivot] {
                self.solved[row.pivot] = true;
                self.solved_count += 1;
                self.last_solved.push(row.pivot);
            }
        }

        let nonzeros = coeffs.count_nonzeros_from(pc);
        debug_assert!(nonzeros >= 1);
        if nonzeros == 1 {
            self.solved[pc] = true;
            self.solved_count += 1;
            self.last_solved.push(pc);
        }
        self.pivot_of_col[pc] = Some(new_idx);
        self.rows.push(Row {
            coeffs,
            payload,
            pivot: pc,
            nonzeros,
        });

        // Advance the decoded-prefix pointer (monotone: a solved column
        // never becomes unsolved, because a solved pivot row has no entry
        // in any later pivot column to be back-eliminated).
        while self.prefix < self.width && self.solved[self.prefix] {
            self.prefix += 1;
        }
        self.last_solved.sort_unstable();

        if prlc_obs::trace::enabled() {
            prlc_obs::trace_instant!(
                "linalg.rref.pivot",
                self.inserted as u64,
                pivot: pc as u64,
                rank: self.rows.len() as u64,
                solved: self.last_solved.len() as u64,
            );
        }

        if prlc_obs::enabled() {
            prlc_obs::counter!("linalg.rref.rows").incr();
            prlc_obs::counter!("linalg.rref.pivots").incr();
            // Rank-vs-rows-consumed trajectory: each innovation records
            // how many rows had been consumed to reach the new rank.
            prlc_obs::histogram!("linalg.rref.rows_per_pivot").observe(self.inserted as u64);
            // Fill-in of the stored row: nonzeros gained between arrival
            // and storage (forward elimination can only add structure to
            // a sparse row). Defined over logical nonzero counts, so the
            // observed values are representation-independent.
            prlc_obs::histogram!("linalg.rref.fill_in")
                .observe(nonzeros.saturating_sub(original_nnz) as u64);
        }

        InsertOutcome::Innovative { pivot: pc }
    }

    /// Snapshot of the held coefficient rows as a matrix (rows in pivot
    /// order, i.e. sorted by pivot column). Intended for inspection and
    /// tests; allocates.
    ///
    /// Returns a `rank × width` matrix, or `None` when no rows are held.
    pub fn coefficient_matrix(&self) -> Option<Matrix<F>> {
        if self.rows.is_empty() {
            return None;
        }
        let mut order: Vec<usize> = (0..self.rows.len()).collect();
        order.sort_by_key(|&i| self.rows[i].pivot);
        Some(Matrix::from_rows(
            order
                .iter()
                .map(|&i| self.rows[i].coeffs.to_dense_vec())
                .collect(),
        ))
    }

    /// Iterates over the determined unknown indices in ascending order.
    pub fn decoded_columns(&self) -> impl Iterator<Item = usize> + '_ {
        self.solved
            .iter()
            .enumerate()
            .filter_map(|(i, &s)| s.then_some(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prlc_gf::Gf256;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn g(v: usize) -> Gf256 {
        Gf256::from_index(v)
    }

    fn rowv(vals: &[usize]) -> Vec<Gf256> {
        vals.iter().map(|&v| g(v)).collect()
    }

    #[test]
    fn empty_decoder_state() {
        let d: ProgressiveRref<Gf256> = ProgressiveRref::new(5);
        assert_eq!(d.width(), 5);
        assert_eq!(d.rank(), 0);
        assert_eq!(d.decoded_prefix(), 0);
        assert_eq!(d.decoded_count(), 0);
        assert!(!d.is_complete());
        assert!(d.coefficient_matrix().is_none());
    }

    #[test]
    fn zero_row_is_redundant() {
        let mut d: ProgressiveRref<Gf256> = ProgressiveRref::new(3);
        assert_eq!(d.insert(rowv(&[0, 0, 0]), ()), InsertOutcome::Redundant);
        assert_eq!(d.rank(), 0);
        assert_eq!(d.inserted(), 1);
    }

    #[test]
    fn single_variable_row_decodes_immediately() {
        let mut d: ProgressiveRref<Gf256> = ProgressiveRref::new(3);
        let out = d.insert(rowv(&[9, 0, 0]), ());
        assert_eq!(out, InsertOutcome::Innovative { pivot: 0 });
        assert_eq!(d.decoded_prefix(), 1);
        assert!(d.is_decoded(0));
        assert!(!d.is_decoded(1));
    }

    #[test]
    fn duplicate_row_is_redundant() {
        let mut d: ProgressiveRref<Gf256> = ProgressiveRref::new(3);
        assert!(d.insert(rowv(&[1, 2, 3]), ()).is_innovative());
        assert_eq!(d.insert(rowv(&[1, 2, 3]), ()), InsertOutcome::Redundant);
        // A scalar multiple is also redundant.
        let mut scaled = rowv(&[1, 2, 3]);
        Gf256::scale_slice(&mut scaled, g(77));
        assert_eq!(d.insert(scaled, ()), InsertOutcome::Redundant);
        assert_eq!(d.rank(), 1);
    }

    #[test]
    fn paper_fig2_partial_decode() {
        // Fig. 2: 5 rows over 6 unknowns; after sorting, the top-left 3x3
        // block is invertible with zeros to its right, so exactly the
        // first 3 unknowns decode from 5 coded blocks. We replicate the
        // *structure* (values differ; the figure's entries are symbolic):
        // rows 1-2 touch x1..x3 only; row 0 touches x1 only; rows 3-4
        // touch all six.
        let mut d: ProgressiveRref<Gf256> = ProgressiveRref::new(6);
        d.insert(rowv(&[5, 0, 0, 0, 0, 0]), ());
        d.insert(rowv(&[1, 7, 2, 0, 0, 0]), ());
        d.insert(rowv(&[3, 1, 9, 0, 0, 0]), ());
        d.insert(rowv(&[4, 2, 8, 1, 5, 7]), ());
        d.insert(rowv(&[6, 3, 1, 2, 9, 4]), ());
        assert_eq!(d.rank(), 5);
        assert_eq!(d.decoded_prefix(), 3);
        assert_eq!(d.decoded_count(), 3);
        assert!(!d.is_decoded(3));
        // The held rows are a valid RREF.
        assert!(d.coefficient_matrix().unwrap().is_rref());
    }

    #[test]
    fn insertion_order_does_not_matter_for_decodability() {
        let rows = [
            rowv(&[4, 2, 8, 1, 5, 7]),
            rowv(&[5, 0, 0, 0, 0, 0]),
            rowv(&[6, 3, 1, 2, 9, 4]),
            rowv(&[1, 7, 2, 0, 0, 0]),
            rowv(&[3, 1, 9, 0, 0, 0]),
        ];
        let mut d: ProgressiveRref<Gf256> = ProgressiveRref::new(6);
        for r in &rows {
            d.insert(r.clone(), ());
        }
        assert_eq!(d.decoded_prefix(), 3);
        assert_eq!(d.rank(), 5);
    }

    #[test]
    fn full_decode_recovers_payload() {
        let mut rng = StdRng::seed_from_u64(21);
        let n = 8;
        let blk = 4;
        // Random source blocks.
        let sources: Vec<Vec<Gf256>> = (0..n)
            .map(|_| (0..blk).map(|_| Gf256::random(&mut rng)).collect())
            .collect();
        let mut d: ProgressiveRref<Gf256, Vec<Gf256>> = ProgressiveRref::new(n);
        while !d.is_complete() {
            let coeffs: Vec<Gf256> = (0..n).map(|_| Gf256::random(&mut rng)).collect();
            let mut payload = vec![Gf256::ZERO; blk];
            for (c, s) in coeffs.iter().zip(&sources) {
                Gf256::axpy(&mut payload, *c, s);
            }
            d.insert(coeffs, payload);
        }
        for (i, s) in sources.iter().enumerate() {
            assert_eq!(d.recovered(i).unwrap(), s, "block {i}");
        }
        assert_eq!(d.decoded_prefix(), n);
    }

    #[test]
    fn partial_decode_recovers_prefix_payloads() {
        // PLC-shaped rows: supports are prefixes. With enough level-1
        // rows the first blocks decode even though later ones cannot.
        let mut rng = StdRng::seed_from_u64(22);
        let n = 6;
        let sources: Vec<Vec<Gf256>> = (0..n).map(|_| vec![Gf256::random(&mut rng)]).collect();
        let mut d: ProgressiveRref<Gf256, Vec<Gf256>> = ProgressiveRref::new(n);
        // Three rows over the first three unknowns only.
        for _ in 0..3 {
            let mut coeffs = vec![Gf256::ZERO; n];
            for c in coeffs.iter_mut().take(3) {
                *c = Gf256::random_nonzero(&mut rng);
            }
            let mut payload = vec![Gf256::ZERO];
            for (c, s) in coeffs.iter().zip(&sources) {
                Gf256::axpy(&mut payload, *c, s);
            }
            d.insert(coeffs, payload);
        }
        // With overwhelming probability three random 3-vectors over
        // GF(256) are independent.
        assert_eq!(d.decoded_prefix(), 3);
        for i in 0..3 {
            assert_eq!(d.recovered(i).unwrap(), &sources[i]);
        }
        assert!(d.recovered(4).is_none());
    }

    #[test]
    fn rank_matches_batch_rref_on_random_inserts() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..20 {
            let width = rng.gen_range(1..10);
            let nrows = rng.gen_range(0..15);
            let rows: Vec<Vec<Gf256>> = (0..nrows)
                .map(|_| {
                    (0..width)
                        .map(|_| {
                            // Sparse-ish rows exercise the support tracking.
                            if rng.gen_bool(0.4) {
                                Gf256::ZERO
                            } else {
                                Gf256::random(&mut rng)
                            }
                        })
                        .collect()
                })
                .collect();
            let mut d: ProgressiveRref<Gf256> = ProgressiveRref::new(width);
            for r in &rows {
                d.insert(r.clone(), ());
            }
            if nrows > 0 {
                let m = Matrix::from_rows(rows);
                assert_eq!(d.rank(), crate::elim::rank(&m));
                if let Some(cm) = d.coefficient_matrix() {
                    assert!(cm.is_rref());
                }
            }
        }
    }

    #[test]
    fn decoded_prefix_is_monotone() {
        let mut rng = StdRng::seed_from_u64(24);
        let n = 12;
        let mut d: ProgressiveRref<Gf256> = ProgressiveRref::new(n);
        let mut last = 0;
        for _ in 0..40 {
            // PLC-style prefix-support rows.
            let lvl = rng.gen_range(1..=n);
            let mut coeffs = vec![Gf256::ZERO; n];
            for c in coeffs.iter_mut().take(lvl) {
                *c = Gf256::random(&mut rng);
            }
            d.insert(coeffs, ());
            let p = d.decoded_prefix();
            assert!(p >= last, "prefix regressed: {last} -> {p}");
            last = p;
        }
    }

    #[test]
    fn decoded_columns_iterates_solved() {
        let mut d: ProgressiveRref<Gf256> = ProgressiveRref::new(4);
        d.insert(rowv(&[0, 0, 3, 0]), ());
        d.insert(rowv(&[7, 0, 0, 0]), ());
        let cols: Vec<usize> = d.decoded_columns().collect();
        assert_eq!(cols, vec![0, 2]);
        assert_eq!(d.decoded_prefix(), 1);
        assert_eq!(d.decoded_count(), 2);
    }

    #[test]
    fn newly_solved_reports_transitions() {
        let mut d: ProgressiveRref<Gf256> = ProgressiveRref::new(3);
        // A 2-variable row solves nothing yet.
        assert!(d.insert(rowv(&[1, 2, 0]), ()).is_innovative());
        assert!(d.newly_solved().is_empty());
        // The second row pins x1 directly and x0 via back-elimination.
        assert!(d.insert(rowv(&[0, 5, 0]), ()).is_innovative());
        assert_eq!(d.newly_solved(), &[0, 1]);
        // A redundant row solves nothing and clears the ledger.
        assert_eq!(d.insert(rowv(&[3, 7, 0]), ()), InsertOutcome::Redundant);
        assert!(d.newly_solved().is_empty());
    }

    #[test]
    fn sparse_rows_match_dense_rows_exactly() {
        use crate::coeffrow::CoeffRow;
        let mut rng = StdRng::seed_from_u64(27);
        for _ in 0..20 {
            let width = rng.gen_range(1..20);
            let nrows = rng.gen_range(0..25);
            let rows: Vec<Vec<Gf256>> = (0..nrows)
                .map(|_| {
                    (0..width)
                        .map(|_| {
                            if rng.gen_bool(0.6) {
                                Gf256::ZERO
                            } else {
                                Gf256::random(&mut rng)
                            }
                        })
                        .collect()
                })
                .collect();
            let mut dd: ProgressiveRref<Gf256> = ProgressiveRref::new(width);
            let mut ds: ProgressiveRref<Gf256> = ProgressiveRref::new(width);
            for r in &rows {
                let entries = r
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| !c.is_zero())
                    .map(|(i, &c)| (i as u32, c))
                    .collect();
                let sparse = CoeffRow::from_sorted_entries(width, entries);
                let a = dd.insert(r.clone(), ());
                let b = ds.insert_row(sparse, ());
                assert_eq!(a, b);
                assert_eq!(dd.newly_solved(), ds.newly_solved());
                assert_eq!(dd.decoded_prefix(), ds.decoded_prefix());
                assert_eq!(dd.decoded_count(), ds.decoded_count());
            }
            assert_eq!(dd.rank(), ds.rank());
            assert_eq!(
                dd.coefficient_matrix().map(|m| m.is_rref()),
                ds.coefficient_matrix().map(|m| m.is_rref())
            );
        }
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn insert_wrong_width_panics() {
        let mut d: ProgressiveRref<Gf256> = ProgressiveRref::new(3);
        d.insert(rowv(&[1, 2]), ());
    }

    #[test]
    fn complete_after_width_innovative_rows() {
        let mut rng = StdRng::seed_from_u64(25);
        let n = 10;
        let mut d: ProgressiveRref<Gf256> = ProgressiveRref::new(n);
        let mut innovative = 0;
        while innovative < n {
            let coeffs: Vec<Gf256> = (0..n).map(|_| Gf256::random(&mut rng)).collect();
            if d.insert(coeffs, ()).is_innovative() {
                innovative += 1;
            }
        }
        assert!(d.is_complete());
        assert_eq!(d.decoded_prefix(), n);
        assert!(d.coefficient_matrix().unwrap().is_identity());
    }
}
