//! Row payloads that mirror elimination operations.
//!
//! Gauss–Jordan elimination on a decoding matrix must perform "identical
//! operations ... on the data blocks as well" (paper, Sec. 3.2). A
//! [`RowPayload`] is whatever travels alongside a coefficient row — the
//! coded data block during real decoding, or nothing at all (`()`) when an
//! experiment only needs decodability, which roughly halves the cost of
//! the large decoding-curve simulations.

use prlc_gf::{kernel, GfElem};

/// Data carried alongside a coefficient row through elimination.
///
/// Implementations must mirror the two row operations of Gauss–Jordan
/// elimination: scaling a row, and adding a multiple of another row.
pub trait RowPayload<F: GfElem> {
    /// Mirrors `row *= c`.
    fn payload_scale(&mut self, c: F);

    /// Mirrors `row += c * other`.
    fn payload_axpy(&mut self, other: &Self, c: F);
}

/// The empty payload: elimination on coefficients only.
impl<F: GfElem> RowPayload<F> for () {
    #[inline]
    fn payload_scale(&mut self, _c: F) {}

    #[inline]
    fn payload_axpy(&mut self, _other: &Self, _c: F) {}
}

/// A coded data block: a vector of field symbols.
///
/// Both operations go straight to the dispatched [`kernel`]. Because the
/// field element types are `repr(transparent)` wrappers over their
/// integer representation, a `Vec<F>` payload *is* a contiguous byte
/// plane — for GF(2⁸) the kernel views it as `&mut [u8]` at zero cost
/// and runs the table/SIMD byte kernels directly on it.
///
/// # Panics
///
/// `payload_axpy` panics if the two blocks have different lengths; all
/// blocks in one decoding session must share the block size.
impl<F: GfElem> RowPayload<F> for Vec<F> {
    #[inline]
    fn payload_scale(&mut self, c: F) {
        kernel::scale_slice(self, c);
    }

    #[inline]
    fn payload_axpy(&mut self, other: &Self, c: F) {
        kernel::axpy(self, c, other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prlc_gf::Gf256;

    #[test]
    fn unit_payload_is_noop() {
        let mut p = ();
        p.payload_scale(Gf256::from_index(3));
        p.payload_axpy(&(), Gf256::from_index(5));
    }

    #[test]
    fn vec_payload_mirrors_slice_ops() {
        let mut a = vec![Gf256::from_index(1), Gf256::from_index(2)];
        let b = vec![Gf256::from_index(3), Gf256::from_index(4)];
        let c = Gf256::from_index(7);
        a.payload_axpy(&b, c);
        assert_eq!(
            a,
            vec![
                Gf256::from_index(1) + c * Gf256::from_index(3),
                Gf256::from_index(2) + c * Gf256::from_index(4),
            ]
        );
        a.payload_scale(Gf256::ZERO);
        assert!(a.iter().all(|x| x.is_zero()));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn vec_payload_length_mismatch_panics() {
        let mut a = vec![Gf256::ONE];
        let b = vec![Gf256::ONE, Gf256::ONE];
        a.payload_axpy(&b, Gf256::ONE);
    }
}
