//! Coefficient rows with a dense and a sparse physical representation.
//!
//! The paper's Sec. 4 sparsity argument (after Dimakis et al.'s
//! decentralized erasure codes) says each coded block needs only
//! `O(ln N)` nonzero coefficients — so at `N = 10^6` a dense `Vec<F>`
//! of length `N` per block wastes five orders of magnitude of memory
//! and bandwidth over the information actually present. [`CoeffRow`]
//! stores a row either densely (a `Vec<F>` plus a tracked support, the
//! representation every experiment used before sparse rows existed) or
//! sparsely (sorted `(index, value)` pairs, the peeling-decoder idiom).
//!
//! # Determinism contract
//!
//! The two representations are *logically identical*: every observable
//! — equality, hashing, `Debug` output, nonzero iteration order, pivot
//! choices and solve order in the progressive RREF — is defined over
//! the logical row (length + nonzero entries), never over the physical
//! layout. A pinned-seed run therefore produces byte-identical decode
//! results, session reports, logical metrics and traces whichever
//! representation it stores rows in; only the `gf.<op>.bytes.*` volume
//! counters differ, because bytes *touched* is exactly the quantity
//! sparsity eliminates. `tests/coeffrep_equivalence.rs` pins this.
//!
//! # Densify threshold
//!
//! A sparse row that fills in past `len / 4` nonzeros (fill-in is what
//! Gauss–Jordan elimination does to sparse rows) switches to the dense
//! layout, where the dispatched [`kernel`](prlc_gf::kernel) slice ops
//! are far cheaper per entry. The threshold depends only on the logical
//! nonzero count, so the switch point is deterministic and identical
//! across platforms and thread counts.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Range;

use prlc_gf::{kernel, GfElem};

/// Which physical layout a [`CoeffRow`] (or a whole run) stores
/// coefficient rows in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoeffRep {
    /// Full-length `Vec<F>` rows — O(N) memory per block.
    Dense,
    /// Sorted `(index, value)` pair rows — O(nnz) memory per block.
    Sparse,
}

/// A sparse row densifies once its nonzero count reaches
/// `len / DENSIFY_DIVISOR`.
const DENSIFY_DIVISOR: usize = 4;

#[derive(Clone)]
enum Repr<F> {
    Dense {
        data: Vec<F>,
        /// Exclusive upper bound of the nonzero region: `data[support..]`
        /// are all zero (the bound may be loose).
        support: usize,
    },
    Sparse {
        len: usize,
        /// Strictly ascending indices; values are never zero.
        entries: Vec<(u32, F)>,
    },
}

/// One coefficient row over `len` unknowns, stored densely or sparsely.
///
/// Equality, ordering-free hashing and `Debug` are *logical*: two rows
/// with the same length and the same nonzero entries compare equal,
/// hash identically and print identically regardless of representation.
#[derive(Clone)]
pub struct CoeffRow<F> {
    repr: Repr<F>,
}

impl<F: GfElem> CoeffRow<F> {
    /// An all-zero row of `len` unknowns in the given representation.
    pub fn zero(len: usize, rep: CoeffRep) -> Self {
        let repr = match rep {
            CoeffRep::Dense => Repr::Dense {
                data: vec![F::ZERO; len],
                support: 0,
            },
            CoeffRep::Sparse => {
                assert!(
                    len <= u32::MAX as usize,
                    "sparse rows index with u32: length {len} out of range"
                );
                Repr::Sparse {
                    len,
                    entries: Vec::new(),
                }
            }
        };
        CoeffRow { repr }
    }

    /// An all-zero row with the same length and representation as `self`.
    pub fn zero_like(&self) -> Self {
        Self::zero(self.len(), self.rep())
    }

    /// Wraps a dense vector, computing its tight trailing support.
    pub fn from_dense(data: Vec<F>) -> Self {
        let support = trailing_support(&data);
        CoeffRow {
            repr: Repr::Dense { data, support },
        }
    }

    /// Builds a sparse row from entries sorted by strictly ascending
    /// index, with no zero values and all indices `< len`.
    pub fn from_sorted_entries(len: usize, entries: Vec<(u32, F)>) -> Self {
        assert!(
            len <= u32::MAX as usize,
            "sparse rows index with u32: length {len} out of range"
        );
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "entries must be sorted by strictly ascending index"
        );
        debug_assert!(entries
            .iter()
            .all(|&(i, v)| (i as usize) < len && !v.is_zero()));
        CoeffRow {
            repr: Repr::Sparse { len, entries },
        }
    }

    /// The number of unknowns (logical row length).
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Dense { data, .. } => data.len(),
            Repr::Sparse { len, .. } => *len,
        }
    }

    /// Whether the row has zero logical length.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current physical representation.
    pub fn rep(&self) -> CoeffRep {
        match &self.repr {
            Repr::Dense { .. } => CoeffRep::Dense,
            Repr::Sparse { .. } => CoeffRep::Sparse,
        }
    }

    /// Heap bytes the coefficient storage occupies in its current
    /// representation: `len · size_of::<F>()` dense, `nnz ·
    /// size_of::<(u32, F)>()` sparse. The quantity the sparse
    /// representation exists to shrink from `O(N)` to `O(ln N)`.
    pub fn storage_bytes(&self) -> usize {
        match &self.repr {
            Repr::Dense { data, .. } => data.len() * std::mem::size_of::<F>(),
            Repr::Sparse { entries, .. } => entries.len() * std::mem::size_of::<(u32, F)>(),
        }
    }

    /// Exclusive upper bound of the nonzero region. Tight for sparse
    /// rows; possibly loose (but always sound) for dense rows.
    pub fn support(&self) -> usize {
        match &self.repr {
            Repr::Dense { support, .. } => *support,
            Repr::Sparse { entries, .. } => entries.last().map_or(0, |&(i, _)| i as usize + 1),
        }
    }

    /// Number of nonzero coefficients. O(1) for sparse rows, O(support)
    /// for dense rows.
    pub fn nnz(&self) -> usize {
        match &self.repr {
            Repr::Dense { data, support } => count_nonzeros(&data[..*support]),
            Repr::Sparse { entries, .. } => entries.len(),
        }
    }

    /// Number of nonzero coefficients at index `start` or later.
    pub fn count_nonzeros_from(&self, start: usize) -> usize {
        match &self.repr {
            Repr::Dense { data, support } => count_nonzeros(&data[start.min(*support)..*support]),
            Repr::Sparse { entries, .. } => {
                entries.len() - entries.partition_point(|&(i, _)| (i as usize) < start)
            }
        }
    }

    /// Whether every coefficient is zero.
    pub fn is_zero_row(&self) -> bool {
        match &self.repr {
            Repr::Dense { data, support } => data[..*support].iter().all(|c| c.is_zero()),
            Repr::Sparse { entries, .. } => entries.is_empty(),
        }
    }

    /// The coefficient at index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> F {
        assert!(i < self.len(), "index {i} out of range");
        match &self.repr {
            Repr::Dense { data, .. } => data[i],
            Repr::Sparse { entries, .. } => entries
                .binary_search_by_key(&(i as u32), |&(idx, _)| idx)
                .map_or(F::ZERO, |p| entries[p].1),
        }
    }

    /// The smallest index `>= from` holding a nonzero coefficient.
    pub fn first_nonzero_at_or_after(&self, from: usize) -> Option<usize> {
        match &self.repr {
            Repr::Dense { data, support } => (from..*support).find(|&j| !data[j].is_zero()),
            Repr::Sparse { entries, .. } => {
                let p = entries.partition_point(|&(i, _)| (i as usize) < from);
                entries.get(p).map(|&(i, _)| i as usize)
            }
        }
    }

    /// Iterates the nonzero coefficients as `(index, value)` in
    /// ascending index order — identical for both representations.
    pub fn iter_nonzeros(&self) -> impl Iterator<Item = (usize, F)> + '_ {
        let (dense, sparse): (&[F], &[(u32, F)]) = match &self.repr {
            Repr::Dense { data, support } => (&data[..*support], &[]),
            Repr::Sparse { entries, .. } => (&[], entries.as_slice()),
        };
        dense
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_zero())
            .map(|(i, &c)| (i, c))
            .chain(sparse.iter().map(|&(i, v)| (i as usize, v)))
    }

    /// `self[i] += delta` — the incremental accumulation step of the
    /// pre-distribution protocol.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn add_assign_at(&mut self, i: usize, delta: F) {
        assert!(i < self.len(), "index {i} out of range");
        if delta.is_zero() {
            return;
        }
        match &mut self.repr {
            Repr::Dense { data, support } => {
                data[i] = data[i].gf_add(delta);
                if i >= *support && !data[i].is_zero() {
                    *support = i + 1;
                }
            }
            Repr::Sparse { entries, .. } => {
                match entries.binary_search_by_key(&(i as u32), |&(idx, _)| idx) {
                    Ok(p) => {
                        let v = entries[p].1.gf_add(delta);
                        if v.is_zero() {
                            entries.remove(p);
                        } else {
                            entries[p].1 = v;
                        }
                    }
                    Err(p) => entries.insert(p, (i as u32, delta)),
                }
                self.maybe_densify();
            }
        }
    }

    /// `self[i] += factor · other[i]` for every `i >= start` — the row
    /// operation of Gauss–Jordan elimination, restricted to the suffix
    /// the caller knows can change.
    ///
    /// Dense-into-dense lowers to exactly
    /// `kernel::axpy(&mut self[start..end], factor, &other[start..end])`
    /// with `end = max(self.support, other.support)` — byte-for-byte the
    /// pre-`CoeffRow` elimination kernel call, so dense runs keep their
    /// pinned `gf.*` byte counters.
    ///
    /// # Panics
    ///
    /// Panics if the row lengths differ.
    pub fn axpy_from(&mut self, start: usize, factor: F, other: &CoeffRow<F>) {
        assert_eq!(self.len(), other.len(), "coefficient width mismatch");
        if factor.is_zero() {
            return;
        }
        match (&mut self.repr, &other.repr) {
            (
                Repr::Dense { data, support },
                Repr::Dense {
                    data: odata,
                    support: osupport,
                },
            ) => {
                let end = (*support).max(*osupport);
                let from = start.min(end);
                kernel::axpy(&mut data[from..end], factor, &odata[from..end]);
                *support = end;
            }
            (Repr::Dense { data, support }, Repr::Sparse { entries, .. }) => {
                for &(i, v) in entries {
                    let i = i as usize;
                    if i < start {
                        continue;
                    }
                    data[i] = data[i].gf_add(factor.gf_mul(v));
                }
                *support = (*support).max(other.support());
            }
            (Repr::Sparse { .. }, Repr::Dense { .. }) => {
                // Mixed-representation runs are the escape hatch, not the
                // hot path: fall back to the dense kernel.
                self.densify();
                self.axpy_from(start, factor, other);
            }
            (
                Repr::Sparse { entries, .. },
                Repr::Sparse {
                    entries: oentries, ..
                },
            ) => {
                *entries = merge_axpy(entries, start as u32, factor, oentries);
                self.maybe_densify();
            }
        }
    }

    /// `self[i] += factor · other[i]` over the *whole* row — the coded
    /// block combine primitive behind in-network repair.
    ///
    /// Dense-into-dense lowers to one full-length
    /// `kernel::axpy(&mut self[..], factor, &other[..])`, exactly the
    /// pre-`CoeffRow` repair kernel call; other pairings delegate to
    /// [`axpy_from`](Self::axpy_from).
    ///
    /// # Panics
    ///
    /// Panics if the row lengths differ.
    pub fn axpy_full(&mut self, factor: F, other: &CoeffRow<F>) {
        assert_eq!(self.len(), other.len(), "coefficient width mismatch");
        if let (Repr::Dense { data, support }, Repr::Dense { data: odata, .. }) =
            (&mut self.repr, &other.repr)
        {
            kernel::axpy(data, factor, odata);
            *support = data.len();
        } else {
            self.axpy_from(0, factor, other);
        }
    }

    /// `self[i] *= c` for every `i >= start` — pivot normalisation.
    ///
    /// Dense lowers to exactly
    /// `kernel::scale_slice(&mut self[start..support], c)`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is zero (scaling a row by zero is never a valid
    /// elimination step).
    pub fn scale_from(&mut self, start: usize, c: F) {
        assert!(!c.is_zero(), "scale by zero");
        match &mut self.repr {
            Repr::Dense { data, support } => {
                let from = start.min(*support);
                kernel::scale_slice(&mut data[from..*support], c);
            }
            Repr::Sparse { entries, .. } => {
                let p = entries.partition_point(|&(i, _)| (i as usize) < start);
                for e in &mut entries[p..] {
                    // c is nonzero, so nonzero values stay nonzero.
                    e.1 = e.1.gf_mul(c);
                }
            }
        }
    }

    /// The sub-row over `range`, preserving the representation — the
    /// per-level projection SLC decoding performs.
    ///
    /// # Panics
    ///
    /// Panics if `range` exceeds the row length.
    pub fn project(&self, range: Range<usize>) -> CoeffRow<F> {
        assert!(range.end <= self.len(), "projection range out of bounds");
        match &self.repr {
            Repr::Dense { data, .. } => CoeffRow::from_dense(data[range].to_vec()),
            Repr::Sparse { entries, .. } => {
                let lo = entries.partition_point(|&(i, _)| (i as usize) < range.start);
                let hi = entries.partition_point(|&(i, _)| (i as usize) < range.end);
                let shifted = entries[lo..hi]
                    .iter()
                    .map(|&(i, v)| (i - range.start as u32, v))
                    .collect();
                CoeffRow::from_sorted_entries(range.len(), shifted)
            }
        }
    }

    /// The row as a full-length dense vector (allocates for sparse
    /// rows) — the on-disk shard format stays dense.
    pub fn to_dense_vec(&self) -> Vec<F> {
        match &self.repr {
            Repr::Dense { data, .. } => data.clone(),
            Repr::Sparse { len, entries } => {
                let mut v = vec![F::ZERO; *len];
                for &(i, val) in entries {
                    v[i as usize] = val;
                }
                v
            }
        }
    }

    /// Switches a sparse row to the dense layout in place (no-op for
    /// dense rows).
    pub fn densify(&mut self) {
        if let Repr::Sparse { len, entries } = &self.repr {
            let support = entries.last().map_or(0, |&(i, _)| i as usize + 1);
            let mut data = vec![F::ZERO; *len];
            for &(i, val) in entries {
                data[i as usize] = val;
            }
            self.repr = Repr::Dense { data, support };
        }
    }

    /// Recomputes the tight trailing support of a dense row (no-op for
    /// sparse rows, whose support is always tight).
    pub fn normalize_support(&mut self) {
        if let Repr::Dense { data, support } = &mut self.repr {
            *support = trailing_support(data);
        }
    }

    /// Densifies once fill-in crosses the deterministic threshold
    /// (`nnz >= len / 4`); depends only on the logical nonzero count.
    fn maybe_densify(&mut self) {
        if let Repr::Sparse { len, entries } = &self.repr {
            if entries.len() * DENSIFY_DIVISOR >= *len {
                self.densify();
            }
        }
    }
}

/// Merge-based sparse axpy: `self + factor · other` over indices
/// `>= start`, with `self`'s entries below `start` kept untouched.
fn merge_axpy<F: GfElem>(
    entries: &[(u32, F)],
    start: u32,
    factor: F,
    other: &[(u32, F)],
) -> Vec<(u32, F)> {
    let mut i = entries.partition_point(|&(idx, _)| idx < start);
    let mut j = other.partition_point(|&(idx, _)| idx < start);
    let mut out = Vec::with_capacity(entries.len() + (other.len() - j));
    out.extend_from_slice(&entries[..i]);
    while i < entries.len() || j < other.len() {
        let si = entries.get(i).map(|&(idx, _)| idx);
        let oj = other.get(j).map(|&(idx, _)| idx);
        match (si, oj) {
            (Some(a), Some(b)) if a == b => {
                let v = entries[i].1.gf_add(factor.gf_mul(other[j].1));
                if !v.is_zero() {
                    out.push((a, v));
                }
                i += 1;
                j += 1;
            }
            (Some(a), Some(b)) if a < b => {
                out.push(entries[i]);
                i += 1;
            }
            (Some(_), Some(b)) => {
                let v = factor.gf_mul(other[j].1);
                if !v.is_zero() {
                    out.push((b, v));
                }
                j += 1;
            }
            (Some(_), None) => {
                out.push(entries[i]);
                i += 1;
            }
            (None, Some(b)) => {
                let v = factor.gf_mul(other[j].1);
                if !v.is_zero() {
                    out.push((b, v));
                }
                j += 1;
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
    out
}

/// Exclusive upper bound of the nonzero region of `v`.
fn trailing_support<F: GfElem>(v: &[F]) -> usize {
    v.iter().rposition(|x| !x.is_zero()).map_or(0, |p| p + 1)
}

fn count_nonzeros<F: GfElem>(v: &[F]) -> usize {
    v.iter().filter(|x| !x.is_zero()).count()
}

impl<F: GfElem> PartialEq for CoeffRow<F> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter_nonzeros().eq(other.iter_nonzeros())
    }
}

impl<F: GfElem> Eq for CoeffRow<F> {}

impl<F: GfElem> Hash for CoeffRow<F> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.len().hash(state);
        for (i, v) in self.iter_nonzeros() {
            i.hash(state);
            v.hash(state);
        }
    }
}

impl<F: GfElem> fmt::Debug for CoeffRow<F> {
    /// Prints the *logical* dense form, so debug output (and anything
    /// derived from it, like the equivalence tests' slot dumps) is
    /// independent of the physical representation.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list()
            .entries((0..self.len()).map(|i| self.get(i)))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prlc_gf::Gf256;
    use std::collections::hash_map::DefaultHasher;

    fn g(v: usize) -> Gf256 {
        Gf256::from_index(v)
    }

    fn dense(vals: &[usize]) -> CoeffRow<Gf256> {
        CoeffRow::from_dense(vals.iter().map(|&v| g(v)).collect())
    }

    fn sparse(len: usize, vals: &[usize]) -> CoeffRow<Gf256> {
        assert_eq!(len, vals.len());
        let entries = vals
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0)
            .map(|(i, &v)| (i as u32, g(v)))
            .collect();
        CoeffRow::from_sorted_entries(len, entries)
    }

    fn hash_of(row: &CoeffRow<Gf256>) -> u64 {
        let mut h = DefaultHasher::new();
        row.hash(&mut h);
        h.finish()
    }

    #[test]
    fn zero_rows_in_both_reps() {
        for rep in [CoeffRep::Dense, CoeffRep::Sparse] {
            let r: CoeffRow<Gf256> = CoeffRow::zero(5, rep);
            assert_eq!(r.len(), 5);
            assert_eq!(r.rep(), rep);
            assert_eq!(r.nnz(), 0);
            assert!(r.is_zero_row());
            assert_eq!(r.support(), 0);
            assert_eq!(r.first_nonzero_at_or_after(0), None);
        }
    }

    #[test]
    fn logical_equality_across_reps() {
        let d = dense(&[0, 7, 0, 3, 0]);
        let s = sparse(5, &[0, 7, 0, 3, 0]);
        assert_eq!(d, s);
        assert_eq!(hash_of(&d), hash_of(&s));
        assert_eq!(format!("{d:?}"), format!("{s:?}"));
        assert_ne!(d, dense(&[0, 7, 0, 4, 0]));
        assert_ne!(d, sparse(5, &[0, 7, 0, 0, 0]));
    }

    #[test]
    fn get_and_first_nonzero_agree() {
        let vals = [0, 7, 0, 3, 0, 9, 0];
        let d = dense(&vals);
        let s = sparse(7, &vals);
        for i in 0..7 {
            assert_eq!(d.get(i), s.get(i));
            assert_eq!(
                d.first_nonzero_at_or_after(i),
                s.first_nonzero_at_or_after(i)
            );
            assert_eq!(d.count_nonzeros_from(i), s.count_nonzeros_from(i));
        }
        assert_eq!(d.nnz(), 3);
        assert_eq!(s.nnz(), 3);
        assert_eq!(d.support(), 6);
        assert_eq!(s.support(), 6);
    }

    #[test]
    fn iter_nonzeros_is_ascending_and_rep_independent() {
        let vals = [5, 0, 0, 2, 1, 0];
        let d = dense(&vals);
        let s = sparse(6, &vals);
        let dv: Vec<_> = d.iter_nonzeros().collect();
        let sv: Vec<_> = s.iter_nonzeros().collect();
        assert_eq!(dv, sv);
        assert_eq!(dv, vec![(0, g(5)), (3, g(2)), (4, g(1))]);
    }

    #[test]
    fn add_assign_cancels_in_both_reps() {
        for rep in [CoeffRep::Dense, CoeffRep::Sparse] {
            let mut r: CoeffRow<Gf256> = CoeffRow::zero(40, rep);
            r.add_assign_at(3, g(9));
            assert_eq!(r.get(3), g(9));
            assert_eq!(r.nnz(), 1);
            // Characteristic 2: adding the same value cancels.
            r.add_assign_at(3, g(9));
            assert!(r.is_zero_row());
        }
    }

    #[test]
    fn axpy_agrees_across_all_rep_pairs() {
        let a = [1, 0, 2, 0, 3, 0, 0, 0];
        let b = [0, 0, 4, 5, 0, 6, 0, 0];
        let factor = g(7);
        for start in [0usize, 2, 4, 8] {
            let mut want: Vec<Gf256> = a.iter().map(|&v| g(v)).collect();
            for (i, w) in want.iter_mut().enumerate() {
                if i >= start {
                    *w = w.gf_add(factor.gf_mul(g(b[i])));
                }
            }
            for self_rep in [CoeffRep::Dense, CoeffRep::Sparse] {
                for other_rep in [CoeffRep::Dense, CoeffRep::Sparse] {
                    let mut x = if self_rep == CoeffRep::Dense {
                        dense(&a)
                    } else {
                        sparse(8, &a)
                    };
                    let y = if other_rep == CoeffRep::Dense {
                        dense(&b)
                    } else {
                        sparse(8, &b)
                    };
                    x.axpy_from(start, factor, &y);
                    assert_eq!(
                        x.to_dense_vec(),
                        want,
                        "start={start} {self_rep:?}+={other_rep:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn scale_from_agrees_across_reps() {
        let vals = [1, 0, 2, 3, 0, 4];
        let c = g(11);
        for start in [0usize, 3, 6] {
            let mut d = dense(&vals);
            let mut s = sparse(6, &vals);
            d.scale_from(start, c);
            s.scale_from(start, c);
            assert_eq!(d, s, "start={start}");
            assert_eq!(d.get(0), if start == 0 { g(1).gf_mul(c) } else { g(1) });
        }
    }

    #[test]
    fn project_preserves_rep_and_values() {
        let vals = [1, 0, 2, 0, 3, 4, 0, 5];
        let d = dense(&vals).project(2..6);
        let s = sparse(8, &vals).project(2..6);
        assert_eq!(d.rep(), CoeffRep::Dense);
        assert_eq!(s.rep(), CoeffRep::Sparse);
        assert_eq!(d, s);
        assert_eq!(d.to_dense_vec(), vec![g(2), g(0), g(3), g(4)]);
    }

    #[test]
    fn densify_threshold_fires_deterministically() {
        // len 40: densifies at nnz 10 = 40/4.
        let mut r: CoeffRow<Gf256> = CoeffRow::zero(40, CoeffRep::Sparse);
        for i in 0..9 {
            r.add_assign_at(i * 4, g(1));
            assert_eq!(r.rep(), CoeffRep::Sparse, "nnz {}", i + 1);
        }
        r.add_assign_at(39, g(1));
        assert_eq!(r.rep(), CoeffRep::Dense);
        assert_eq!(r.nnz(), 10);
    }

    #[test]
    fn dense_support_tracks_axpy_end() {
        let mut a = dense(&[1, 0, 0, 0, 0, 0]);
        assert_eq!(a.support(), 1);
        let b = dense(&[0, 0, 0, 5, 0, 0]);
        a.axpy_from(0, g(2), &b);
        assert_eq!(a.support(), 4);
        a.normalize_support();
        assert_eq!(a.support(), 4);
    }

    #[test]
    fn to_dense_round_trips() {
        let vals = [0, 9, 0, 0, 7, 0];
        let s = sparse(6, &vals);
        let d = CoeffRow::from_dense(s.to_dense_vec());
        assert_eq!(s, d);
        assert_eq!(d.rep(), CoeffRep::Dense);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let r: CoeffRow<Gf256> = CoeffRow::zero(3, CoeffRep::Sparse);
        r.get(3);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn axpy_width_mismatch_panics() {
        let mut a: CoeffRow<Gf256> = CoeffRow::zero(3, CoeffRep::Dense);
        let b: CoeffRow<Gf256> = CoeffRow::zero(4, CoeffRep::Dense);
        a.axpy_from(0, g(1), &b);
    }
}
