//! Property tests cross-validating the progressive decoder against the
//! batch Gauss–Jordan reference implementation.

use proptest::prelude::*;

use prlc_gf::{Gf16, Gf256, GfElem};

use crate::coeffrow::CoeffRow;
use crate::elim;
use crate::matrix::Matrix;
use crate::progressive::ProgressiveRref;

/// Strategy: a list of rows of the given width with entries biased toward
/// zero (sparse rows exercise support tracking and pivot placement).
fn rows_strategy(width: usize, max_rows: usize) -> impl Strategy<Value = Vec<Vec<Gf256>>> {
    prop::collection::vec(
        prop::collection::vec(
            prop_oneof![
                3 => Just(0usize),
                2 => 0usize..256,
            ],
            width,
        ),
        0..=max_rows,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|r| r.into_iter().map(Gf256::from_index).collect())
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn progressive_rank_equals_batch_rank(
        rows in rows_strategy(8, 16)
    ) {
        let mut d: ProgressiveRref<Gf256> = ProgressiveRref::new(8);
        for r in &rows {
            d.insert(r.clone(), ());
        }
        if rows.is_empty() {
            prop_assert_eq!(d.rank(), 0);
        } else {
            let m = Matrix::from_rows(rows);
            prop_assert_eq!(d.rank(), elim::rank(&m));
        }
    }

    #[test]
    fn progressive_state_is_always_rref(
        rows in rows_strategy(7, 12)
    ) {
        let mut d: ProgressiveRref<Gf256> = ProgressiveRref::new(7);
        for r in &rows {
            d.insert(r.clone(), ());
            if let Some(m) = d.coefficient_matrix() {
                prop_assert!(m.is_rref(), "not RREF after insert:\n{:?}", m);
            }
        }
    }

    #[test]
    fn decoded_columns_match_batch_rref_solvability(
        rows in rows_strategy(6, 10)
    ) {
        // A column is decodable iff in the batch RREF its pivot row has a
        // single nonzero entry. Cross-check against the incremental
        // solved-flag bookkeeping.
        prop_assume!(!rows.is_empty());
        let mut d: ProgressiveRref<Gf256> = ProgressiveRref::new(6);
        for r in &rows {
            d.insert(r.clone(), ());
        }
        let red = elim::rref(&Matrix::from_rows(rows));
        let mut batch_solved = vec![false; 6];
        for (ri, &pc) in red.pivot_cols.iter().enumerate() {
            let nz = red.matrix.row(ri).iter().filter(|v| !v.is_zero()).count();
            if nz == 1 {
                batch_solved[pc] = true;
            }
        }
        for c in 0..6 {
            prop_assert_eq!(
                d.is_decoded(c),
                batch_solved[c],
                "column {} disagreement", c
            );
        }
        let batch_prefix = batch_solved.iter().take_while(|&&s| s).count();
        prop_assert_eq!(d.decoded_prefix(), batch_prefix);
    }

    #[test]
    fn rank_never_exceeds_inserts_or_width(
        rows in rows_strategy(5, 20)
    ) {
        let mut d: ProgressiveRref<Gf256> = ProgressiveRref::new(5);
        for r in &rows {
            d.insert(r.clone(), ());
        }
        prop_assert!(d.rank() <= 5);
        prop_assert!(d.rank() <= rows.len());
        prop_assert!(d.decoded_count() <= d.rank());
        prop_assert!(d.decoded_prefix() <= d.decoded_count());
    }

    #[test]
    fn payload_tracking_solves_the_system(
        seed in 0u64..1000,
        n in 2usize..8,
    ) {
        // Generate random full systems and verify payload recovery equals
        // the true solution for every decoded column, even mid-decode.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let sources: Vec<Vec<Gf256>> = (0..n)
            .map(|_| vec![Gf256::random(&mut rng), Gf256::random(&mut rng)])
            .collect();
        let mut d: ProgressiveRref<Gf256, Vec<Gf256>> = ProgressiveRref::new(n);
        for _ in 0..(2 * n) {
            let coeffs: Vec<Gf256> = (0..n).map(|_| Gf256::random(&mut rng)).collect();
            let mut payload = vec![Gf256::ZERO; 2];
            for (c, s) in coeffs.iter().zip(&sources) {
                Gf256::axpy(&mut payload, *c, s);
            }
            d.insert(coeffs, payload);
            for c in 0..n {
                if let Some(p) = d.recovered(c) {
                    prop_assert_eq!(p, &sources[c], "column {}", c);
                }
            }
        }
    }

    #[test]
    fn batch_rref_idempotent(rows in rows_strategy(6, 9)) {
        prop_assume!(!rows.is_empty());
        let m = Matrix::from_rows(rows);
        let r1 = elim::rref(&m);
        let r2 = elim::rref(&r1.matrix);
        prop_assert_eq!(&r1.matrix, &r2.matrix);
        prop_assert_eq!(r1.rank, r2.rank);
    }

    #[test]
    fn solve_agrees_with_known_solution_gf16(
        seed in 0u64..500,
        n in 1usize..6,
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::<Gf16>::random(n + 2, n, &mut rng);
        let x: Vec<Gf16> = (0..n).map(|_| Gf16::random(&mut rng)).collect();
        let b = a.mul_vec(&x);
        match elim::solve(&a, &b) {
            elim::SolveOutcome::Unique(got) => prop_assert_eq!(got, x),
            elim::SolveOutcome::Underdetermined => {
                prop_assert!(elim::rank(&a) < n);
            }
            elim::SolveOutcome::Inconsistent => {
                // b was constructed in the column space; impossible.
                prop_assert!(false, "consistent system reported inconsistent");
            }
        }
    }

    /// Feeding the same rows as dense vectors and as sparse entry lists
    /// must drive the progressive RREF through identical states: same
    /// insert outcomes (pivot columns), same `newly_solved` order, same
    /// decoded prefix after every insert — across random widths and
    /// zero-biased (level-structured) row mixes.
    #[test]
    fn dense_and_sparse_rows_agree_through_progressive_rref(
        rows in rows_strategy(9, 14)
    ) {
        let width = 9;
        let mut dense: ProgressiveRref<Gf256> = ProgressiveRref::new(width);
        let mut sparse: ProgressiveRref<Gf256> = ProgressiveRref::new(width);
        for r in &rows {
            let d_out = dense.insert(r.clone(), ());
            let entries: Vec<(u32, Gf256)> = r
                .iter()
                .enumerate()
                .filter(|(_, v)| !v.is_zero())
                .map(|(i, &v)| (i as u32, v))
                .collect();
            let s_out = sparse.insert_row(CoeffRow::from_sorted_entries(width, entries), ());
            prop_assert_eq!(&d_out, &s_out, "insert outcomes diverged on {:?}", r);
            prop_assert_eq!(dense.rank(), sparse.rank());
            prop_assert_eq!(dense.decoded_prefix(), sparse.decoded_prefix());
            prop_assert_eq!(dense.decoded_count(), sparse.decoded_count());
        }
        prop_assert_eq!(dense.coefficient_matrix(), sparse.coefficient_matrix());
    }
}
