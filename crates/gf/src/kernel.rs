//! The `GfKernel` slice-arithmetic layer: bulk [`axpy`], [`scale_slice`],
//! [`add_slice`], [`mul_slice`] and [`dot`] over contiguous symbol slices,
//! with a backend selected once per process.
//!
//! Every layer above this crate — matrix row operations, progressive
//! Gauss–Jordan, payload mirroring, encoding — expresses its inner loops
//! in terms of these five functions, so a backend improvement here
//! accelerates the whole stack.
//!
//! # Backends
//!
//! * [`Backend::Scalar`] — the generic discrete-log/antilog loop. Works
//!   for every `GF(2^w)` and serves as the reference implementation the
//!   other backends are property-tested against (bit-identical output).
//! * [`Backend::Table`] — the 64 KiB product table for GF(2⁸): one load
//!   plus one XOR per byte. Fields other than GF(2⁸) fall back to the
//!   scalar loop.
//! * [`Backend::Simd`] — GF(2⁸) constant-by-slice multiplication via the
//!   nibble-split shuffle technique (SSSE3/AVX2 on x86_64, NEON on
//!   aarch64): for a constant `c`, precompute two 16-entry tables
//!   `L[i] = c·i` and `H[i] = c·(i·16)`; then `c·b = L[b & 0xF] ^ H[b >> 4]`
//!   by linearity of the field product over XOR, evaluated 16/32 bytes at
//!   a time with byte-shuffle instructions. Products of two *variable*
//!   slices (`mul_slice`, `dot`) have no constant to split on and run
//!   through the product table.
//!
//! # Selection
//!
//! The backend is chosen once, on first use, in this order:
//!
//! 1. The `PRLC_KERNEL` environment variable, when set to `scalar`,
//!    `table` or `simd`. A request for `simd` on hardware without the
//!    required features — and any unrecognised value, including `auto` —
//!    falls through to step 2.
//! 2. Otherwise the best available backend: `simd` when runtime feature
//!    detection succeeds, `table` otherwise.
//!
//! Regardless of backend, [`add_slice`] on fields whose addition is a
//! plain XOR of the representation ([`GfElem::REPR_XOR`]) runs
//! word-at-a-time (u64 chunks) over the raw byte plane.
//!
//! The `*_with` variants ([`axpy_with`] etc.) force a specific backend —
//! they exist for the equivalence property tests and the
//! backend-comparison benchmarks; production code should use the
//! dispatched entry points.

use std::fmt;
use std::sync::OnceLock;

use crate::element::{gf256_product_table, GfElem};

/// A slice-arithmetic implementation strategy. See the [module
/// docs](self) for what each backend does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Generic discrete-log/antilog element loop (any `GF(2^w)`).
    Scalar,
    /// 64 KiB product-table byte loop (GF(2⁸); scalar elsewhere).
    Table,
    /// Nibble-split shuffle kernels (GF(2⁸); product table for
    /// variable×variable products, scalar for other fields).
    Simd,
}

impl Backend {
    /// The lowercase name used by `PRLC_KERNEL` and run metadata.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Table => "table",
            Backend::Simd => "simd",
        }
    }

    /// Parses a `PRLC_KERNEL`-style name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Backend> {
        match name.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(Backend::Scalar),
            "table" => Some(Backend::Table),
            "simd" => Some(Backend::Simd),
            _ => None,
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which SIMD instruction set the [`Backend::Simd`] kernels use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SimdLevel {
    #[cfg(target_arch = "x86_64")]
    Avx2,
    #[cfg(target_arch = "x86_64")]
    Ssse3,
    #[cfg(target_arch = "aarch64")]
    Neon,
}

impl SimdLevel {
    /// Vector width in bytes.
    #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
    fn width(self) -> usize {
        match self {
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => 32,
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Ssse3 => 16,
            #[cfg(target_arch = "aarch64")]
            SimdLevel::Neon => 16,
        }
    }

    fn name(self) -> &'static str {
        match self {
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => "avx2",
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Ssse3 => "ssse3",
            #[cfg(target_arch = "aarch64")]
            SimdLevel::Neon => "neon",
        }
    }
}

/// Runtime CPU feature detection for the SIMD kernels. Under Miri the
/// intrinsics are unsupported, so detection reports no SIMD and every
/// kernel path stays on the interpretable scalar/table implementations.
fn detect_simd() -> Option<SimdLevel> {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        if std::is_x86_feature_detected!("avx2") {
            return Some(SimdLevel::Avx2);
        }
        if std::is_x86_feature_detected!("ssse3") {
            return Some(SimdLevel::Ssse3);
        }
        None
    }
    #[cfg(all(target_arch = "aarch64", not(miri)))]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            return Some(SimdLevel::Neon);
        }
        None
    }
    #[cfg(any(not(any(target_arch = "x86_64", target_arch = "aarch64")), miri))]
    {
        None
    }
}

/// Resolves a `PRLC_KERNEL` request against what the hardware offers.
/// `None`, `auto` and unrecognised values all mean "best available";
/// `simd` without hardware support degrades the same way.
fn choose(request: Option<&str>, simd_available: bool) -> Backend {
    let auto = if simd_available {
        Backend::Simd
    } else {
        Backend::Table
    };
    match request.and_then(Backend::from_name) {
        Some(Backend::Scalar) => Backend::Scalar,
        Some(Backend::Table) => Backend::Table,
        Some(Backend::Simd) if simd_available => Backend::Simd,
        _ => auto,
    }
}

fn select() -> (Backend, Option<SimdLevel>) {
    static ACTIVE: OnceLock<(Backend, Option<SimdLevel>)> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        let level = detect_simd();
        let request = std::env::var("PRLC_KERNEL").ok();
        (choose(request.as_deref(), level.is_some()), level)
    })
}

/// The backend chosen for this process (selected on first use; see the
/// [module docs](self) for the selection order).
pub fn active_backend() -> Backend {
    select().0
}

/// Human-readable description of the active backend, including the SIMD
/// instruction set when relevant — e.g. `"simd(avx2)"` or `"table"`.
/// Used by run headers and benchmark metadata.
pub fn active_backend_description() -> String {
    match select() {
        (Backend::Simd, Some(level)) => format!("simd({})", level.name()),
        (backend, _) => backend.name().to_string(),
    }
}

/// The backends this process can actually execute, in increasing order of
/// expected speed. [`Backend::Simd`] appears only when feature detection
/// succeeds. Benchmarks and equivalence tests iterate over this list.
pub fn available_backends() -> Vec<Backend> {
    let mut backends = vec![Backend::Scalar, Backend::Table];
    if detect_simd().is_some() {
        backends.push(Backend::Simd);
    }
    backends
}

// ---------------------------------------------------------------------------
// Dispatched public entry points.
// ---------------------------------------------------------------------------

// Byte-volume accounting (`gf.<op>.bytes.<backend>` counters) for the
// dispatched entry points. Everything — including backend resolution for
// the argument expression — sits behind the `prlc_obs::enabled()` guard,
// so the disabled cost is a single relaxed atomic load per call.
macro_rules! record_bytes {
    ($op:literal, $backend:expr, $slice:expr) => {
        if prlc_obs::enabled() {
            let counter = match $backend {
                Backend::Scalar => prlc_obs::counter!(concat!("gf.", $op, ".bytes.scalar")),
                Backend::Table => prlc_obs::counter!(concat!("gf.", $op, ".bytes.table")),
                Backend::Simd => prlc_obs::counter!(concat!("gf.", $op, ".bytes.simd")),
            };
            counter.add(core::mem::size_of_val($slice) as u64);
        }
    };
}

/// `dst[i] += c * src[i]` for all `i` — the inner loop of Gaussian and
/// Gauss–Jordan elimination and of encoding.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy<F: GfElem>(dst: &mut [F], c: F, src: &[F]) {
    let (backend, level) = select();
    record_bytes!("axpy", backend, src);
    axpy_impl(backend, level, dst, c, src);
}

/// `dst[i] *= c` for all `i`.
pub fn scale_slice<F: GfElem>(dst: &mut [F], c: F) {
    let (backend, level) = select();
    record_bytes!("scale", backend, &*dst);
    scale_slice_impl(backend, level, dst, c);
}

/// `dst[i] += src[i]` for all `i`. Backend-independent: fields with
/// XOR-representable addition always take the u64-chunked byte-plane
/// path.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add_slice<F: GfElem>(dst: &mut [F], src: &[F]) {
    record_bytes!("add", select().0, src);
    add_slice_impl(dst, src);
}

/// Elementwise product `dst[i] *= src[i]` for all `i`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_slice<F: GfElem>(dst: &mut [F], src: &[F]) {
    let backend = select().0;
    record_bytes!("mul", backend, src);
    mul_slice_impl(backend, dst, src);
}

/// Dot product `sum_i a[i] * b[i]`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot<F: GfElem>(a: &[F], b: &[F]) -> F {
    let backend = select().0;
    record_bytes!("dot", backend, a);
    dot_impl(backend, a, b)
}

// ---------------------------------------------------------------------------
// Forced-backend entry points (equivalence tests and benchmarks).
// ---------------------------------------------------------------------------

/// [`axpy`] forced onto `backend`. A `Simd` request silently degrades to
/// `Table` when the hardware lacks the features (use
/// [`available_backends`] to avoid benchmarking the degraded path).
pub fn axpy_with<F: GfElem>(backend: Backend, dst: &mut [F], c: F, src: &[F]) {
    axpy_impl(backend, detect_simd(), dst, c, src);
}

/// [`scale_slice`] forced onto `backend`.
pub fn scale_slice_with<F: GfElem>(backend: Backend, dst: &mut [F], c: F) {
    scale_slice_impl(backend, detect_simd(), dst, c);
}

/// [`mul_slice`] forced onto `backend`.
pub fn mul_slice_with<F: GfElem>(backend: Backend, dst: &mut [F], src: &[F]) {
    mul_slice_impl(backend, dst, src);
}

/// [`dot`] forced onto `backend`.
pub fn dot_with<F: GfElem>(backend: Backend, a: &[F], b: &[F]) -> F {
    dot_impl(backend, a, b)
}

// ---------------------------------------------------------------------------
// Implementations.
// ---------------------------------------------------------------------------

fn axpy_impl<F: GfElem>(
    backend: Backend,
    level: Option<SimdLevel>,
    dst: &mut [F],
    c: F,
    src: &[F],
) {
    assert_eq!(dst.len(), src.len(), "axpy length mismatch");
    if c.is_zero() {
        return;
    }
    if c == F::ONE {
        add_slice_impl(dst, src);
        return;
    }
    if backend != Backend::Scalar {
        if let (Some(s), Some(d)) = (plane::gf256(src), plane::gf256_mut(dst)) {
            let row = gf256_product_table().row(c.index() as u8);
            gf256_axpy_bytes(backend, level, d, row, s);
            return;
        }
    }
    for (d, s) in dst.iter_mut().zip(src) {
        *d = d.gf_add(c.gf_mul(*s));
    }
}

fn scale_slice_impl<F: GfElem>(backend: Backend, level: Option<SimdLevel>, dst: &mut [F], c: F) {
    if c == F::ONE {
        return;
    }
    if backend != Backend::Scalar && !c.is_zero() {
        if let Some(d) = plane::gf256_mut(dst) {
            let row = gf256_product_table().row(c.index() as u8);
            gf256_scale_bytes(backend, level, d, row);
            return;
        }
    }
    for d in dst.iter_mut() {
        *d = d.gf_mul(c);
    }
}

fn add_slice_impl<F: GfElem>(dst: &mut [F], src: &[F]) {
    assert_eq!(dst.len(), src.len(), "add_slice length mismatch");
    if let (Some(s), Some(d)) = (plane::xor_bytes(src), plane::xor_bytes_mut(dst)) {
        xor_slice_u64(d, s);
        return;
    }
    for (d, s) in dst.iter_mut().zip(src) {
        *d = d.gf_add(*s);
    }
}

fn mul_slice_impl<F: GfElem>(backend: Backend, dst: &mut [F], src: &[F]) {
    assert_eq!(dst.len(), src.len(), "mul_slice length mismatch");
    // Variable×variable products have no constant to build shuffle
    // tables from, so Simd shares the product-table loop here.
    if backend != Backend::Scalar {
        if let (Some(s), Some(d)) = (plane::gf256(src), plane::gf256_mut(dst)) {
            let table = gf256_product_table();
            for (d, s) in d.iter_mut().zip(s) {
                *d = table.row(*d)[*s as usize];
            }
            return;
        }
    }
    for (d, s) in dst.iter_mut().zip(src) {
        *d = d.gf_mul(*s);
    }
}

fn dot_impl<F: GfElem>(backend: Backend, a: &[F], b: &[F]) -> F {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    if backend != Backend::Scalar {
        if let (Some(a), Some(b)) = (plane::gf256(a), plane::gf256(b)) {
            let table = gf256_product_table();
            let mut acc = 0u8;
            for (x, y) in a.iter().zip(b) {
                acc ^= table.row(*x)[*y as usize];
            }
            return F::from_index(acc as usize);
        }
    }
    let mut acc = F::ZERO;
    for (x, y) in a.iter().zip(b) {
        acc = acc.gf_add(x.gf_mul(*y));
    }
    acc
}

/// XOR `src` into `dst` one u64 word at a time, with a byte tail. This is
/// the shared `add_slice` fast path for every XOR-representable field.
fn xor_slice_u64(dst: &mut [u8], src: &[u8]) {
    debug_assert_eq!(dst.len(), src.len());
    let mut d_chunks = dst.chunks_exact_mut(8);
    let mut s_chunks = src.chunks_exact(8);
    for (d, s) in d_chunks.by_ref().zip(s_chunks.by_ref()) {
        let mut dw = [0u8; 8];
        let mut sw = [0u8; 8];
        dw.copy_from_slice(d);
        sw.copy_from_slice(s);
        let word = u64::from_ne_bytes(dw) ^ u64::from_ne_bytes(sw);
        d.copy_from_slice(&word.to_ne_bytes());
    }
    for (d, s) in d_chunks
        .into_remainder()
        .iter_mut()
        .zip(s_chunks.remainder())
    {
        *d ^= *s;
    }
}

/// GF(2⁸) byte-plane `dst ^= row[src]` with the requested backend.
fn gf256_axpy_bytes(
    backend: Backend,
    level: Option<SimdLevel>,
    dst: &mut [u8],
    row: &[u8; 256],
    src: &[u8],
) {
    if backend == Backend::Simd {
        if let Some(level) = level {
            simd::axpy(level, dst, src, row);
            return;
        }
    }
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= row[*s as usize];
    }
}

/// GF(2⁸) byte-plane `dst = row[dst]` with the requested backend.
fn gf256_scale_bytes(backend: Backend, level: Option<SimdLevel>, dst: &mut [u8], row: &[u8; 256]) {
    if backend == Backend::Simd {
        if let Some(level) = level {
            simd::scale(level, dst, row);
            return;
        }
    }
    for d in dst.iter_mut() {
        *d = row[*d as usize];
    }
}

// ---------------------------------------------------------------------------
// Byte-plane views.
// ---------------------------------------------------------------------------

/// Reinterpretations of symbol slices as raw byte planes. Confined to the
/// three field types defined by this crate, which are `repr(transparent)`
/// wrappers over `u8`/`u16`; every bit pattern of the underlying integer
/// is a valid value at the language level, and the kernels only ever
/// write XOR-combinations or table entries of valid representations, so
/// the library-level domain invariants (e.g. `Gf16 < 16`) are preserved.
#[allow(unsafe_code)]
mod plane {
    use std::any::TypeId;

    use crate::element::{Gf16, Gf256, Gf64k};
    use crate::GfElem;

    fn is_crate_xor_type<F: GfElem>() -> bool {
        let t = TypeId::of::<F>();
        F::REPR_XOR
            && (t == TypeId::of::<Gf16>()
                || t == TypeId::of::<Gf256>()
                || t == TypeId::of::<Gf64k>())
    }

    /// The byte plane of any crate-local XOR-representable field slice
    /// (`None` for foreign `GfElem` implementations).
    pub(super) fn xor_bytes_mut<F: GfElem>(s: &mut [F]) -> Option<&mut [u8]> {
        if !is_crate_xor_type::<F>() {
            return None;
        }
        let len = std::mem::size_of_val(s);
        // SAFETY: the guard admits only Gf16/Gf256/Gf64k — repr(transparent)
        // over u8/u16 with no padding — so the slice is exactly `len`
        // initialised bytes, and u8 has no validity invariant.
        Some(unsafe { std::slice::from_raw_parts_mut(s.as_mut_ptr().cast::<u8>(), len) })
    }

    /// Shared-reference variant of [`xor_bytes_mut`].
    pub(super) fn xor_bytes<F: GfElem>(s: &[F]) -> Option<&[u8]> {
        if !is_crate_xor_type::<F>() {
            return None;
        }
        let len = std::mem::size_of_val(s);
        // SAFETY: as in `xor_bytes_mut`.
        Some(unsafe { std::slice::from_raw_parts(s.as_ptr().cast::<u8>(), len) })
    }

    /// The byte plane of a GF(2⁸) slice specifically (`None` for every
    /// other field).
    pub(super) fn gf256_mut<F: GfElem>(s: &mut [F]) -> Option<&mut [u8]> {
        if TypeId::of::<F>() != TypeId::of::<Gf256>() {
            return None;
        }
        // SAFETY: F is exactly Gf256, a `repr(transparent)` u8 wrapper;
        // every u8 bit pattern is a valid Gf256.
        Some(unsafe { std::slice::from_raw_parts_mut(s.as_mut_ptr().cast::<u8>(), s.len()) })
    }

    /// Shared-reference variant of [`gf256_mut`].
    pub(super) fn gf256<F: GfElem>(s: &[F]) -> Option<&[u8]> {
        if TypeId::of::<F>() != TypeId::of::<Gf256>() {
            return None;
        }
        // SAFETY: as in `gf256_mut`.
        Some(unsafe { std::slice::from_raw_parts(s.as_ptr().cast::<u8>(), s.len()) })
    }
}

// ---------------------------------------------------------------------------
// SIMD kernels (nibble-split shuffle).
// ---------------------------------------------------------------------------

#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
#[allow(unsafe_code)]
mod simd {
    use super::SimdLevel;

    /// The two 16-entry shuffle tables for multiplication by the constant
    /// whose product row is `row`: `lo[i] = c·i`, `hi[i] = c·(i·16)`.
    fn nibble_tables(row: &[u8; 256]) -> ([u8; 16], [u8; 16]) {
        let mut lo = [0u8; 16];
        let mut hi = [0u8; 16];
        for (i, (l, h)) in lo.iter_mut().zip(hi.iter_mut()).enumerate() {
            *l = row[i];
            *h = row[i << 4];
        }
        (lo, hi)
    }

    /// `dst ^= c·src` over the vector-aligned prefix, product-table tail.
    pub(super) fn axpy(level: SimdLevel, dst: &mut [u8], src: &[u8], row: &[u8; 256]) {
        let (lo, hi) = nibble_tables(row);
        let n = dst.len() - dst.len() % level.width();
        // SAFETY: `level` came from runtime feature detection, so the
        // matching instruction set is available on this CPU.
        unsafe {
            match level {
                #[cfg(target_arch = "x86_64")]
                SimdLevel::Avx2 => x86::axpy_avx2(&mut dst[..n], &src[..n], &lo, &hi),
                #[cfg(target_arch = "x86_64")]
                SimdLevel::Ssse3 => x86::axpy_ssse3(&mut dst[..n], &src[..n], &lo, &hi),
                #[cfg(target_arch = "aarch64")]
                SimdLevel::Neon => arm::axpy_neon(&mut dst[..n], &src[..n], &lo, &hi),
            }
        }
        for (d, s) in dst[n..].iter_mut().zip(&src[n..]) {
            *d ^= row[*s as usize];
        }
    }

    /// `dst = c·dst` over the vector-aligned prefix, product-table tail.
    pub(super) fn scale(level: SimdLevel, dst: &mut [u8], row: &[u8; 256]) {
        let (lo, hi) = nibble_tables(row);
        let n = dst.len() - dst.len() % level.width();
        // SAFETY: as in `axpy`.
        unsafe {
            match level {
                #[cfg(target_arch = "x86_64")]
                SimdLevel::Avx2 => x86::scale_avx2(&mut dst[..n], &lo, &hi),
                #[cfg(target_arch = "x86_64")]
                SimdLevel::Ssse3 => x86::scale_ssse3(&mut dst[..n], &lo, &hi),
                #[cfg(target_arch = "aarch64")]
                SimdLevel::Neon => arm::scale_neon(&mut dst[..n], &lo, &hi),
            }
        }
        for d in dst[n..].iter_mut() {
            *d = row[*d as usize];
        }
    }

    #[cfg(target_arch = "x86_64")]
    mod x86 {
        use std::arch::x86_64::*;

        // SAFETY: caller must verify SSSE3 support (detect() does) and pass
        // slices of equal, 16-divisible length; only unaligned loads/stores.
        #[target_feature(enable = "ssse3")]
        pub(super) unsafe fn axpy_ssse3(dst: &mut [u8], src: &[u8], lo: &[u8; 16], hi: &[u8; 16]) {
            debug_assert_eq!(dst.len() % 16, 0);
            let lo_t = _mm_loadu_si128(lo.as_ptr().cast());
            let hi_t = _mm_loadu_si128(hi.as_ptr().cast());
            let mask = _mm_set1_epi8(0x0f);
            for i in (0..dst.len()).step_by(16) {
                let s = _mm_loadu_si128(src.as_ptr().add(i).cast());
                let d = _mm_loadu_si128(dst.as_ptr().add(i).cast());
                let prod = _mm_xor_si128(
                    _mm_shuffle_epi8(lo_t, _mm_and_si128(s, mask)),
                    _mm_shuffle_epi8(hi_t, _mm_and_si128(_mm_srli_epi64::<4>(s), mask)),
                );
                _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), _mm_xor_si128(d, prod));
            }
        }

        // SAFETY: caller must verify SSSE3 support (detect() does) and pass a
        // 16-divisible dst length; only unaligned loads/stores.
        #[target_feature(enable = "ssse3")]
        pub(super) unsafe fn scale_ssse3(dst: &mut [u8], lo: &[u8; 16], hi: &[u8; 16]) {
            debug_assert_eq!(dst.len() % 16, 0);
            let lo_t = _mm_loadu_si128(lo.as_ptr().cast());
            let hi_t = _mm_loadu_si128(hi.as_ptr().cast());
            let mask = _mm_set1_epi8(0x0f);
            for i in (0..dst.len()).step_by(16) {
                let d = _mm_loadu_si128(dst.as_ptr().add(i).cast());
                let prod = _mm_xor_si128(
                    _mm_shuffle_epi8(lo_t, _mm_and_si128(d, mask)),
                    _mm_shuffle_epi8(hi_t, _mm_and_si128(_mm_srli_epi64::<4>(d), mask)),
                );
                _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), prod);
            }
        }

        // SAFETY: caller must verify AVX2 support (detect() does) and pass
        // slices of equal, 32-divisible length; only unaligned loads/stores.
        #[target_feature(enable = "avx2")]
        pub(super) unsafe fn axpy_avx2(dst: &mut [u8], src: &[u8], lo: &[u8; 16], hi: &[u8; 16]) {
            debug_assert_eq!(dst.len() % 32, 0);
            let lo_t = _mm256_broadcastsi128_si256(_mm_loadu_si128(lo.as_ptr().cast()));
            let hi_t = _mm256_broadcastsi128_si256(_mm_loadu_si128(hi.as_ptr().cast()));
            let mask = _mm256_set1_epi8(0x0f);
            for i in (0..dst.len()).step_by(32) {
                let s = _mm256_loadu_si256(src.as_ptr().add(i).cast());
                let d = _mm256_loadu_si256(dst.as_ptr().add(i).cast());
                let prod = _mm256_xor_si256(
                    _mm256_shuffle_epi8(lo_t, _mm256_and_si256(s, mask)),
                    _mm256_shuffle_epi8(hi_t, _mm256_and_si256(_mm256_srli_epi64::<4>(s), mask)),
                );
                _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), _mm256_xor_si256(d, prod));
            }
        }

        // SAFETY: caller must verify AVX2 support (detect() does) and pass a
        // 32-divisible dst length; only unaligned loads/stores.
        #[target_feature(enable = "avx2")]
        pub(super) unsafe fn scale_avx2(dst: &mut [u8], lo: &[u8; 16], hi: &[u8; 16]) {
            debug_assert_eq!(dst.len() % 32, 0);
            let lo_t = _mm256_broadcastsi128_si256(_mm_loadu_si128(lo.as_ptr().cast()));
            let hi_t = _mm256_broadcastsi128_si256(_mm_loadu_si128(hi.as_ptr().cast()));
            let mask = _mm256_set1_epi8(0x0f);
            for i in (0..dst.len()).step_by(32) {
                let d = _mm256_loadu_si256(dst.as_ptr().add(i).cast());
                let prod = _mm256_xor_si256(
                    _mm256_shuffle_epi8(lo_t, _mm256_and_si256(d, mask)),
                    _mm256_shuffle_epi8(hi_t, _mm256_and_si256(_mm256_srli_epi64::<4>(d), mask)),
                );
                _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), prod);
            }
        }
    }

    #[cfg(target_arch = "aarch64")]
    mod arm {
        use std::arch::aarch64::*;

        // SAFETY: caller must verify NEON support (detect() does) and pass
        // slices of equal, 16-divisible length; NEON loads are unaligned.
        #[target_feature(enable = "neon")]
        pub(super) unsafe fn axpy_neon(dst: &mut [u8], src: &[u8], lo: &[u8; 16], hi: &[u8; 16]) {
            debug_assert_eq!(dst.len() % 16, 0);
            let lo_t = vld1q_u8(lo.as_ptr());
            let hi_t = vld1q_u8(hi.as_ptr());
            let mask = vdupq_n_u8(0x0f);
            for i in (0..dst.len()).step_by(16) {
                let s = vld1q_u8(src.as_ptr().add(i));
                let d = vld1q_u8(dst.as_ptr().add(i));
                let prod = veorq_u8(
                    vqtbl1q_u8(lo_t, vandq_u8(s, mask)),
                    vqtbl1q_u8(hi_t, vshrq_n_u8::<4>(s)),
                );
                vst1q_u8(dst.as_mut_ptr().add(i), veorq_u8(d, prod));
            }
        }

        // SAFETY: caller must verify NEON support (detect() does) and pass a
        // 16-divisible dst length; NEON loads are unaligned.
        #[target_feature(enable = "neon")]
        pub(super) unsafe fn scale_neon(dst: &mut [u8], lo: &[u8; 16], hi: &[u8; 16]) {
            debug_assert_eq!(dst.len() % 16, 0);
            let lo_t = vld1q_u8(lo.as_ptr());
            let hi_t = vld1q_u8(hi.as_ptr());
            let mask = vdupq_n_u8(0x0f);
            for i in (0..dst.len()).step_by(16) {
                let d = vld1q_u8(dst.as_ptr().add(i));
                let prod = veorq_u8(
                    vqtbl1q_u8(lo_t, vandq_u8(d, mask)),
                    vqtbl1q_u8(hi_t, vshrq_n_u8::<4>(d)),
                );
                vst1q_u8(dst.as_mut_ptr().add(i), prod);
            }
        }
    }
}

/// Uncallable stand-in on architectures without SIMD kernels:
/// [`SimdLevel`] is uninhabited there, so these never execute.
#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
mod simd {
    use super::SimdLevel;

    pub(super) fn axpy(level: SimdLevel, _dst: &mut [u8], _src: &[u8], _row: &[u8; 256]) {
        match level {}
    }

    pub(super) fn scale(level: SimdLevel, _dst: &mut [u8], _row: &[u8; 256]) {
        match level {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gf16, Gf256, Gf64k};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Slice lengths covering the interesting boundaries: empty, single
    /// element, sub-vector, around one vector (16), around an AVX2
    /// vector (32), around the u64-chunk boundary, and a bulk size.
    const LENGTHS: &[usize] = &[0, 1, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 100, 1000];

    fn random_slice<F: GfElem>(rng: &mut StdRng, n: usize) -> Vec<F> {
        (0..n).map(|_| F::random(rng)).collect()
    }

    fn check_all_ops_match_scalar<F: GfElem>(seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for &n in LENGTHS {
            for backend in available_backends() {
                let src: Vec<F> = random_slice(&mut rng, n);
                let base: Vec<F> = random_slice(&mut rng, n);
                let c = F::random(&mut rng);

                let mut want = base.clone();
                axpy_with(Backend::Scalar, &mut want, c, &src);
                let mut got = base.clone();
                axpy_with(backend, &mut got, c, &src);
                assert_eq!(got, want, "axpy {backend} n={n}");

                let mut want = base.clone();
                scale_slice_with(Backend::Scalar, &mut want, c);
                let mut got = base.clone();
                scale_slice_with(backend, &mut got, c);
                assert_eq!(got, want, "scale_slice {backend} n={n}");

                let mut want = base.clone();
                mul_slice_with(Backend::Scalar, &mut want, &src);
                let mut got = base.clone();
                mul_slice_with(backend, &mut got, &src);
                assert_eq!(got, want, "mul_slice {backend} n={n}");

                assert_eq!(
                    dot_with(backend, &base, &src),
                    dot_with(Backend::Scalar, &base, &src),
                    "dot {backend} n={n}"
                );
            }
        }
    }

    #[test]
    fn backends_match_scalar_gf16() {
        check_all_ops_match_scalar::<Gf16>(1);
    }

    #[test]
    fn backends_match_scalar_gf256() {
        check_all_ops_match_scalar::<Gf256>(2);
    }

    #[test]
    fn backends_match_scalar_gf64k() {
        check_all_ops_match_scalar::<Gf64k>(3);
    }

    #[test]
    fn add_slice_matches_elementwise_xor() {
        let mut rng = StdRng::seed_from_u64(4);
        for &n in LENGTHS {
            let src: Vec<Gf64k> = random_slice(&mut rng, n);
            let base: Vec<Gf64k> = random_slice(&mut rng, n);
            let want: Vec<Gf64k> = base.iter().zip(&src).map(|(d, s)| d.gf_add(*s)).collect();
            let mut got = base.clone();
            add_slice(&mut got, &src);
            assert_eq!(got, want, "add_slice n={n}");
        }
    }

    #[test]
    fn xor_slice_u64_handles_all_tails() {
        let mut rng = StdRng::seed_from_u64(5);
        for &n in LENGTHS {
            let src: Vec<u8> = (0..n).map(|_| rng.gen()).collect();
            let base: Vec<u8> = (0..n).map(|_| rng.gen()).collect();
            let want: Vec<u8> = base.iter().zip(&src).map(|(d, s)| d ^ s).collect();
            let mut got = base.clone();
            xor_slice_u64(&mut got, &src);
            assert_eq!(got, want, "xor n={n}");
        }
    }

    #[test]
    fn dispatched_ops_match_forced_active_backend() {
        let mut rng = StdRng::seed_from_u64(6);
        let backend = active_backend();
        let src: Vec<Gf256> = random_slice(&mut rng, 500);
        let base: Vec<Gf256> = random_slice(&mut rng, 500);
        let c = Gf256::random_nonzero(&mut rng);

        let mut want = base.clone();
        axpy_with(backend, &mut want, c, &src);
        let mut got = base.clone();
        axpy(&mut got, c, &src);
        assert_eq!(got, want);
    }

    #[test]
    fn axpy_special_constants() {
        let mut rng = StdRng::seed_from_u64(7);
        let src: Vec<Gf256> = random_slice(&mut rng, 37);
        let base: Vec<Gf256> = random_slice(&mut rng, 37);
        for backend in available_backends() {
            // c = 0 leaves dst untouched.
            let mut d = base.clone();
            axpy_with(backend, &mut d, Gf256::ZERO, &src);
            assert_eq!(d, base);
            // c = 1 is plain addition.
            let mut d = base.clone();
            axpy_with(backend, &mut d, Gf256::ONE, &src);
            let want: Vec<Gf256> = base.iter().zip(&src).map(|(x, y)| x.gf_add(*y)).collect();
            assert_eq!(d, want);
        }
    }

    #[test]
    fn scale_by_zero_clears() {
        let mut rng = StdRng::seed_from_u64(8);
        for backend in available_backends() {
            let mut d: Vec<Gf256> = random_slice(&mut rng, 50);
            scale_slice_with(backend, &mut d, Gf256::ZERO);
            assert!(d.iter().all(|x| x.is_zero()), "{backend}");
        }
    }

    #[test]
    #[should_panic(expected = "axpy length mismatch")]
    fn axpy_length_mismatch_panics() {
        let mut d = vec![Gf256::ZERO; 3];
        axpy(&mut d, Gf256::ONE, &[Gf256::ZERO; 4]);
    }

    #[test]
    fn selection_policy() {
        // Explicit requests are honoured when available.
        assert_eq!(choose(Some("scalar"), true), Backend::Scalar);
        assert_eq!(choose(Some("table"), true), Backend::Table);
        assert_eq!(choose(Some("simd"), true), Backend::Simd);
        assert_eq!(choose(Some("SIMD"), true), Backend::Simd);
        // A simd request degrades gracefully without hardware support.
        assert_eq!(choose(Some("simd"), false), Backend::Table);
        // Unset, auto and unknown values pick the best available.
        assert_eq!(choose(None, true), Backend::Simd);
        assert_eq!(choose(None, false), Backend::Table);
        assert_eq!(choose(Some("auto"), true), Backend::Simd);
        assert_eq!(choose(Some("bogus"), false), Backend::Table);
    }

    #[test]
    fn backend_names_round_trip() {
        for backend in [Backend::Scalar, Backend::Table, Backend::Simd] {
            assert_eq!(Backend::from_name(backend.name()), Some(backend));
            assert_eq!(format!("{backend}"), backend.name());
        }
        assert_eq!(Backend::from_name("nonsense"), None);
    }

    #[test]
    fn active_backend_is_available() {
        let available = available_backends();
        assert!(available.contains(&Backend::Scalar));
        assert!(available.contains(&Backend::Table));
        assert!(available.contains(&active_backend()));
        assert!(!active_backend_description().is_empty());
    }
}
