//! Property-based tests for the field axioms on all three fields.

use proptest::prelude::*;

use crate::{Gf16, Gf256, Gf64k, GfElem};

macro_rules! field_axiom_tests {
    ($modname:ident, $ty:ty) => {
        mod $modname {
            use super::*;

            fn elem() -> impl Strategy<Value = $ty> {
                (0..<$ty as GfElem>::ORDER).prop_map(<$ty>::from_index)
            }

            proptest! {
                #[test]
                fn add_commutative(a in elem(), b in elem()) {
                    prop_assert_eq!(a + b, b + a);
                }

                #[test]
                fn add_associative(a in elem(), b in elem(), c in elem()) {
                    prop_assert_eq!((a + b) + c, a + (b + c));
                }

                #[test]
                fn mul_commutative(a in elem(), b in elem()) {
                    prop_assert_eq!(a * b, b * a);
                }

                #[test]
                fn mul_associative(a in elem(), b in elem(), c in elem()) {
                    prop_assert_eq!((a * b) * c, a * (b * c));
                }

                #[test]
                fn distributive(a in elem(), b in elem(), c in elem()) {
                    prop_assert_eq!(a * (b + c), a * b + a * c);
                }

                #[test]
                fn additive_identity(a in elem()) {
                    prop_assert_eq!(a + <$ty as GfElem>::ZERO, a);
                }

                #[test]
                fn multiplicative_identity(a in elem()) {
                    prop_assert_eq!(a * <$ty as GfElem>::ONE, a);
                }

                #[test]
                fn mul_by_zero_annihilates(a in elem()) {
                    prop_assert_eq!(a * <$ty as GfElem>::ZERO, <$ty as GfElem>::ZERO);
                }

                #[test]
                fn inverse_roundtrip(a in elem()) {
                    match a.gf_inv() {
                        Some(inv) => prop_assert_eq!(a * inv, <$ty as GfElem>::ONE),
                        None => prop_assert!(a.is_zero()),
                    }
                }

                #[test]
                fn div_then_mul_roundtrip(a in elem(), b in elem()) {
                    prop_assume!(!b.is_zero());
                    prop_assert_eq!((a / b) * b, a);
                }

                #[test]
                fn no_zero_divisors(a in elem(), b in elem()) {
                    prop_assume!(!a.is_zero() && !b.is_zero());
                    prop_assert!(!(a * b).is_zero());
                }

                #[test]
                fn pow_adds_exponents(a in elem(), e1 in 0u64..64, e2 in 0u64..64) {
                    prop_assume!(!a.is_zero());
                    prop_assert_eq!(a.gf_pow(e1) * a.gf_pow(e2), a.gf_pow(e1 + e2));
                }

                #[test]
                fn index_roundtrip(a in elem()) {
                    prop_assert_eq!(<$ty>::from_index(a.index()), a);
                }
            }
        }
    };
}

field_axiom_tests!(gf16, Gf16);
field_axiom_tests!(gf256, Gf256);
field_axiom_tests!(gf64k, Gf64k);

mod bulk_ops {
    use super::*;

    proptest! {
        #[test]
        fn axpy_matches_scalar_formula(
            c in 0usize..256,
            data in prop::collection::vec((0usize..256, 0usize..256), 0..64)
        ) {
            let c = Gf256::from_index(c);
            let mut dst: Vec<Gf256> =
                data.iter().map(|&(d, _)| Gf256::from_index(d)).collect();
            let src: Vec<Gf256> =
                data.iter().map(|&(_, s)| Gf256::from_index(s)).collect();
            let expect: Vec<Gf256> = dst
                .iter()
                .zip(&src)
                .map(|(&d, &s)| d + c * s)
                .collect();
            Gf256::axpy(&mut dst, c, &src);
            prop_assert_eq!(dst, expect);
        }

        #[test]
        fn scale_slice_matches_scalar_formula(
            c in 0usize..256,
            data in prop::collection::vec(0usize..256, 0..64)
        ) {
            let c = Gf256::from_index(c);
            let mut dst: Vec<Gf256> =
                data.iter().map(|&d| Gf256::from_index(d)).collect();
            let expect: Vec<Gf256> = dst.iter().map(|&d| d * c).collect();
            Gf256::scale_slice(&mut dst, c);
            prop_assert_eq!(dst, expect);
        }

        #[test]
        fn axpy_then_undo_restores(
            c in 1usize..256,
            data in prop::collection::vec((0usize..256, 0usize..256), 0..64)
        ) {
            // In characteristic 2, applying the same axpy twice is a no-op.
            let c = Gf256::from_index(c);
            let original: Vec<Gf256> =
                data.iter().map(|&(d, _)| Gf256::from_index(d)).collect();
            let src: Vec<Gf256> =
                data.iter().map(|&(_, s)| Gf256::from_index(s)).collect();
            let mut dst = original.clone();
            Gf256::axpy(&mut dst, c, &src);
            Gf256::axpy(&mut dst, c, &src);
            prop_assert_eq!(dst, original);
        }
    }
}
