//! Property-based tests for the field axioms on all three fields, and
//! for the equivalence of every [`crate::kernel`] backend.

use proptest::prelude::*;

use crate::kernel::{self, Backend};
use crate::{Gf16, Gf256, Gf64k, GfElem};

macro_rules! field_axiom_tests {
    ($modname:ident, $ty:ty) => {
        mod $modname {
            use super::*;

            fn elem() -> impl Strategy<Value = $ty> {
                (0..<$ty as GfElem>::ORDER).prop_map(<$ty>::from_index)
            }

            proptest! {
                #[test]
                fn add_commutative(a in elem(), b in elem()) {
                    prop_assert_eq!(a + b, b + a);
                }

                #[test]
                fn add_associative(a in elem(), b in elem(), c in elem()) {
                    prop_assert_eq!((a + b) + c, a + (b + c));
                }

                #[test]
                fn mul_commutative(a in elem(), b in elem()) {
                    prop_assert_eq!(a * b, b * a);
                }

                #[test]
                fn mul_associative(a in elem(), b in elem(), c in elem()) {
                    prop_assert_eq!((a * b) * c, a * (b * c));
                }

                #[test]
                fn distributive(a in elem(), b in elem(), c in elem()) {
                    prop_assert_eq!(a * (b + c), a * b + a * c);
                }

                #[test]
                fn additive_identity(a in elem()) {
                    prop_assert_eq!(a + <$ty as GfElem>::ZERO, a);
                }

                #[test]
                fn multiplicative_identity(a in elem()) {
                    prop_assert_eq!(a * <$ty as GfElem>::ONE, a);
                }

                #[test]
                fn mul_by_zero_annihilates(a in elem()) {
                    prop_assert_eq!(a * <$ty as GfElem>::ZERO, <$ty as GfElem>::ZERO);
                }

                #[test]
                fn inverse_roundtrip(a in elem()) {
                    match a.gf_inv() {
                        Some(inv) => prop_assert_eq!(a * inv, <$ty as GfElem>::ONE),
                        None => prop_assert!(a.is_zero()),
                    }
                }

                #[test]
                fn div_then_mul_roundtrip(a in elem(), b in elem()) {
                    prop_assume!(!b.is_zero());
                    prop_assert_eq!((a / b) * b, a);
                }

                #[test]
                fn no_zero_divisors(a in elem(), b in elem()) {
                    prop_assume!(!a.is_zero() && !b.is_zero());
                    prop_assert!(!(a * b).is_zero());
                }

                #[test]
                fn pow_adds_exponents(a in elem(), e1 in 0u64..64, e2 in 0u64..64) {
                    prop_assume!(!a.is_zero());
                    prop_assert_eq!(a.gf_pow(e1) * a.gf_pow(e2), a.gf_pow(e1 + e2));
                }

                #[test]
                fn index_roundtrip(a in elem()) {
                    prop_assert_eq!(<$ty>::from_index(a.index()), a);
                }
            }
        }
    };
}

field_axiom_tests!(gf16, Gf16);
field_axiom_tests!(gf256, Gf256);
field_axiom_tests!(gf64k, Gf64k);

/// Every available kernel backend must produce bit-identical results to
/// the generic scalar backend, on every field and at every slice length —
/// in particular at the SIMD kernels' edge cases: empty slices, a single
/// element, and lengths that are not a multiple of the 16/32-byte lane
/// width. Each generated case is additionally checked on a set of fixed
/// edge-length prefixes so those lengths are exercised on *every* run,
/// not just when the generator happens to produce them.
macro_rules! backend_equiv_tests {
    ($modname:ident, $ty:ty) => {
        mod $modname {
            use super::*;

            fn elem() -> impl Strategy<Value = $ty> {
                (0..<$ty as GfElem>::ORDER).prop_map(<$ty>::from_index)
            }

            /// Prefix lengths to check: kernel edge cases plus the full
            /// generated slice.
            fn prefixes(len: usize) -> Vec<usize> {
                let mut ls: Vec<usize> = [0usize, 1, 15, 17, 33, len]
                    .into_iter()
                    .filter(|&l| l <= len)
                    .collect();
                ls.sort_unstable();
                ls.dedup();
                ls
            }

            proptest! {
                #[test]
                fn axpy_identical_across_backends(
                    c in elem(),
                    data in prop::collection::vec((elem(), elem()), 0..130)
                ) {
                    let dst: Vec<$ty> = data.iter().map(|&(d, _)| d).collect();
                    let src: Vec<$ty> = data.iter().map(|&(_, s)| s).collect();
                    for n in prefixes(data.len()) {
                        let mut reference = dst[..n].to_vec();
                        kernel::axpy_with(Backend::Scalar, &mut reference, c, &src[..n]);
                        for backend in kernel::available_backends() {
                            let mut out = dst[..n].to_vec();
                            kernel::axpy_with(backend, &mut out, c, &src[..n]);
                            prop_assert_eq!(&out, &reference, "{} len {}", backend, n);
                        }
                    }
                }

                #[test]
                fn scale_slice_identical_across_backends(
                    c in elem(),
                    data in prop::collection::vec(elem(), 0..130)
                ) {
                    for n in prefixes(data.len()) {
                        let mut reference = data[..n].to_vec();
                        kernel::scale_slice_with(Backend::Scalar, &mut reference, c);
                        for backend in kernel::available_backends() {
                            let mut out = data[..n].to_vec();
                            kernel::scale_slice_with(backend, &mut out, c);
                            prop_assert_eq!(&out, &reference, "{} len {}", backend, n);
                        }
                    }
                }

                #[test]
                fn mul_slice_identical_across_backends(
                    data in prop::collection::vec((elem(), elem()), 0..130)
                ) {
                    let dst: Vec<$ty> = data.iter().map(|&(d, _)| d).collect();
                    let src: Vec<$ty> = data.iter().map(|&(_, s)| s).collect();
                    for n in prefixes(data.len()) {
                        let mut reference = dst[..n].to_vec();
                        kernel::mul_slice_with(Backend::Scalar, &mut reference, &src[..n]);
                        for backend in kernel::available_backends() {
                            let mut out = dst[..n].to_vec();
                            kernel::mul_slice_with(backend, &mut out, &src[..n]);
                            prop_assert_eq!(&out, &reference, "{} len {}", backend, n);
                        }
                    }
                }

                #[test]
                fn dot_identical_across_backends(
                    data in prop::collection::vec((elem(), elem()), 0..130)
                ) {
                    let a: Vec<$ty> = data.iter().map(|&(x, _)| x).collect();
                    let b: Vec<$ty> = data.iter().map(|&(_, y)| y).collect();
                    for n in prefixes(data.len()) {
                        let reference = kernel::dot_with(Backend::Scalar, &a[..n], &b[..n]);
                        for backend in kernel::available_backends() {
                            let got = kernel::dot_with(backend, &a[..n], &b[..n]);
                            prop_assert_eq!(got, reference, "{} len {}", backend, n);
                        }
                    }
                }
            }
        }
    };
}

backend_equiv_tests!(backend_equiv_gf16, Gf16);
backend_equiv_tests!(backend_equiv_gf256, Gf256);
backend_equiv_tests!(backend_equiv_gf64k, Gf64k);

mod bulk_ops {
    use super::*;

    proptest! {
        #[test]
        fn axpy_matches_scalar_formula(
            c in 0usize..256,
            data in prop::collection::vec((0usize..256, 0usize..256), 0..64)
        ) {
            let c = Gf256::from_index(c);
            let mut dst: Vec<Gf256> =
                data.iter().map(|&(d, _)| Gf256::from_index(d)).collect();
            let src: Vec<Gf256> =
                data.iter().map(|&(_, s)| Gf256::from_index(s)).collect();
            let expect: Vec<Gf256> = dst
                .iter()
                .zip(&src)
                .map(|(&d, &s)| d + c * s)
                .collect();
            Gf256::axpy(&mut dst, c, &src);
            prop_assert_eq!(dst, expect);
        }

        #[test]
        fn scale_slice_matches_scalar_formula(
            c in 0usize..256,
            data in prop::collection::vec(0usize..256, 0..64)
        ) {
            let c = Gf256::from_index(c);
            let mut dst: Vec<Gf256> =
                data.iter().map(|&d| Gf256::from_index(d)).collect();
            let expect: Vec<Gf256> = dst.iter().map(|&d| d * c).collect();
            Gf256::scale_slice(&mut dst, c);
            prop_assert_eq!(dst, expect);
        }

        #[test]
        fn axpy_then_undo_restores(
            c in 1usize..256,
            data in prop::collection::vec((0usize..256, 0usize..256), 0..64)
        ) {
            // In characteristic 2, applying the same axpy twice is a no-op.
            let c = Gf256::from_index(c);
            let original: Vec<Gf256> =
                data.iter().map(|&(d, _)| Gf256::from_index(d)).collect();
            let src: Vec<Gf256> =
                data.iter().map(|&(_, s)| Gf256::from_index(s)).collect();
            let mut dst = original.clone();
            Gf256::axpy(&mut dst, c, &src);
            Gf256::axpy(&mut dst, c, &src);
            prop_assert_eq!(dst, original);
        }
    }
}
