//! Discrete log/antilog table construction for `GF(2^w)`.
//!
//! Each field is constructed as `GF(2)[x] / (P)` where `P` is a primitive
//! polynomial, so `x` generates the multiplicative group of order `q − 1`.
//! The tables give `exp[i] = x^i` and `log[v] = i` with `exp[log[v]] = v`;
//! the `exp` table is doubled in length so `exp[log a + log b]` needs no
//! modular reduction.

/// Log/antilog tables for one binary-extension field.
#[derive(Debug)]
pub struct GfTables {
    /// `exp[i] = x^i` for `0 <= i < 2(q-1)` (doubled to skip the mod).
    pub exp: Vec<u32>,
    /// `log[v]` for `1 <= v < q`; `log[0]` is unused and set to `u32::MAX`.
    pub log: Vec<u32>,
    /// Field size `q = 2^w`.
    pub order: usize,
}

impl GfTables {
    /// Builds the tables for `GF(2^bits)` reduced by the primitive
    /// polynomial `poly` (given with its leading `x^bits` term included,
    /// e.g. `0x11D` for the GF(2⁸) polynomial `x⁸+x⁴+x³+x²+1`).
    ///
    /// # Panics
    ///
    /// Panics if `poly` is not primitive for the field (i.e. if `x` fails
    /// to generate all `q − 1` nonzero elements), which would silently
    /// corrupt all subsequent arithmetic.
    pub fn build(bits: u32, poly: u32) -> Self {
        assert!((2..=16).contains(&bits), "supported widths are 2..=16");
        let order = 1usize << bits;
        let group = order - 1;
        let mut exp = vec![0u32; 2 * group];
        let mut log = vec![u32::MAX; order];

        let mut val: u32 = 1;
        for (i, slot) in exp.iter_mut().take(group).enumerate() {
            *slot = val;
            assert!(
                log[val as usize] == u32::MAX,
                "polynomial {poly:#x} is not primitive for GF(2^{bits}): \
                 x^{i} revisits {val:#x}"
            );
            log[val as usize] = i as u32;
            val <<= 1;
            if val & (order as u32) != 0 {
                val ^= poly;
            }
        }
        assert!(val == 1, "x^(q-1) != 1; {poly:#x} does not define a field");
        for i in 0..group {
            exp[group + i] = exp[i];
        }
        GfTables { exp, log, order }
    }

    /// Multiplies two field elements via the log tables.
    #[inline]
    pub fn mul(&self, a: u32, b: u32) -> u32 {
        if a == 0 || b == 0 {
            return 0;
        }
        self.exp[(self.log[a as usize] + self.log[b as usize]) as usize]
    }

    /// Multiplicative inverse of `a`, or `None` when `a == 0`.
    #[inline]
    pub fn inv(&self, a: u32) -> Option<u32> {
        if a == 0 {
            return None;
        }
        let group = (self.order - 1) as u32;
        Some(self.exp[(group - self.log[a as usize]) as usize])
    }

    /// `a / b`, or `None` when `b == 0`. `0 / b == 0` for nonzero `b`.
    #[inline]
    pub fn div(&self, a: u32, b: u32) -> Option<u32> {
        let binv = self.inv(b)?;
        Some(self.mul(a, binv))
    }

    /// `a^e` by exponent reduction in the cyclic group.
    #[inline]
    pub fn pow(&self, a: u32, e: u64) -> u32 {
        if a == 0 {
            // 0^0 == 1 by the usual empty-product convention.
            return u32::from(e == 0);
        }
        let group = (self.order - 1) as u64;
        let idx = (u64::from(self.log[a as usize]) * (e % group)) % group;
        self.exp[idx as usize]
    }
}

/// Primitive polynomial `x⁴ + x + 1` for GF(2⁴).
pub const POLY_GF16: u32 = 0x13;
/// Primitive polynomial `x⁸ + x⁴ + x³ + x² + 1` for GF(2⁸).
pub const POLY_GF256: u32 = 0x11D;
/// Primitive polynomial `x¹⁶ + x¹² + x³ + x + 1` for GF(2¹⁶).
pub const POLY_GF64K: u32 = 0x1100B;

/// Full 256×256 multiplication table for GF(2⁸).
///
/// 64 KiB; fits comfortably in L2 and turns the hot `axpy` loop of
/// Gauss–Jordan elimination into one indexed load and one XOR per byte.
#[derive(Debug)]
pub struct Mul256Table {
    rows: Vec<[u8; 256]>,
}

impl Mul256Table {
    /// Builds the table from the GF(2⁸) log tables.
    pub fn build(tables: &GfTables) -> Self {
        assert_eq!(tables.order, 256);
        let mut rows = vec![[0u8; 256]; 256];
        for (a, row) in rows.iter_mut().enumerate() {
            for (b, slot) in row.iter_mut().enumerate() {
                *slot = tables.mul(a as u32, b as u32) as u8;
            }
        }
        Mul256Table { rows }
    }

    /// The 256-entry row of products `c * 0 ..= c * 255`.
    #[inline]
    pub fn row(&self, c: u8) -> &[u8; 256] {
        &self.rows[c as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gf256_tables_cover_all_nonzero_elements() {
        let t = GfTables::build(8, POLY_GF256);
        let mut seen = vec![false; 256];
        for i in 0..255 {
            let v = t.exp[i] as usize;
            assert!(!seen[v], "exp repeats before wrapping");
            seen[v] = true;
        }
        assert!(!seen[0], "zero never appears in the exp table");
        assert_eq!(seen.iter().filter(|&&s| s).count(), 255);
    }

    #[test]
    fn gf16_and_gf64k_build() {
        let t4 = GfTables::build(4, POLY_GF16);
        assert_eq!(t4.order, 16);
        let t16 = GfTables::build(16, POLY_GF64K);
        assert_eq!(t16.order, 65536);
        // Known value: in GF(16) with x^4+x+1, x^4 = x + 1 = 0b0011.
        assert_eq!(t4.exp[4], 0b0011);
    }

    #[test]
    #[should_panic(expected = "not primitive")]
    fn non_primitive_polynomial_is_rejected() {
        // x^4 + x^3 + x^2 + x + 1 is irreducible over GF(2) but NOT
        // primitive: x has order 5, so the exp walk revisits 1 early.
        GfTables::build(4, 0x1F);
    }

    #[test]
    fn mul_matches_schoolbook_carryless_multiply() {
        // Verify table-driven multiplication against bitwise polynomial
        // multiplication + reduction for GF(2^8).
        fn slow_mul(mut a: u32, mut b: u32) -> u32 {
            let mut acc = 0u32;
            while b != 0 {
                if b & 1 != 0 {
                    acc ^= a;
                }
                a <<= 1;
                if a & 0x100 != 0 {
                    a ^= POLY_GF256;
                }
                b >>= 1;
            }
            acc
        }
        let t = GfTables::build(8, POLY_GF256);
        for a in 0..256u32 {
            for b in (0..256u32).step_by(7) {
                assert_eq!(t.mul(a, b), slow_mul(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn inv_and_div_roundtrip() {
        let t = GfTables::build(8, POLY_GF256);
        assert_eq!(t.inv(0), None);
        assert_eq!(t.div(5, 0), None);
        for a in 1..256u32 {
            let inv = t.inv(a).unwrap();
            assert_eq!(t.mul(a, inv), 1, "a={a}");
            assert_eq!(t.div(a, a), Some(1));
        }
        assert_eq!(t.div(0, 17), Some(0));
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let t = GfTables::build(8, POLY_GF256);
        for a in [0u32, 1, 2, 3, 91, 255] {
            let mut acc = 1u32;
            for e in 0..20u64 {
                assert_eq!(t.pow(a, e), acc, "a={a} e={e}");
                acc = t.mul(acc, a);
            }
        }
        // Fermat: a^(q-1) == 1 for a != 0.
        assert_eq!(t.pow(123, 255), 1);
        assert_eq!(t.pow(0, 0), 1);
        assert_eq!(t.pow(0, 5), 0);
    }

    #[test]
    fn mul256_table_agrees_with_log_tables() {
        let t = GfTables::build(8, POLY_GF256);
        let m = Mul256Table::build(&t);
        for a in (0..256usize).step_by(11) {
            for b in 0..256usize {
                assert_eq!(u32::from(m.row(a as u8)[b]), t.mul(a as u32, b as u32));
            }
        }
    }
}
