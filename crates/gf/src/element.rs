//! The [`GfElem`] trait and the concrete field element types.

use std::fmt;
use std::hash::Hash;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::sync::OnceLock;

use rand::Rng;

use crate::tables::{GfTables, Mul256Table, POLY_GF16, POLY_GF256, POLY_GF64K};

/// An element of a binary-extension Galois field `GF(2^w)`.
///
/// All coding-theoretic code in the workspace is generic over this trait;
/// the paper's experiments use [`Gf256`] (the field named in Sec. 5 of
/// Lin–Li–Liang), while [`Gf16`] and [`Gf64k`] support the field-size
/// ablation.
///
/// Implementors also get the full set of `std::ops` operator overloads
/// (`+` and `-` are both XOR in characteristic 2; `/` panics on a zero
/// divisor — use [`GfElem::gf_div`] for a checked variant).
pub trait GfElem:
    Copy
    + Clone
    + Eq
    + PartialEq
    + Ord
    + PartialOrd
    + Hash
    + fmt::Debug
    + fmt::Display
    + fmt::LowerHex
    + fmt::UpperHex
    + fmt::Binary
    + Default
    + Send
    + Sync
    + Sized
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + 'static
{
    /// Field size `q = 2^BITS`.
    const ORDER: usize;
    /// Field width `w` in bits.
    const BITS: u32;
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;
    /// Whether [`GfElem::gf_add`] is exactly XOR of the in-memory
    /// representation *and* the set of valid representations is closed
    /// under XOR. When `true`, [`crate::kernel`] may perform addition
    /// word-at-a-time over the raw byte plane of a symbol slice.
    /// Defaults to `false` so external implementors opt in explicitly.
    const REPR_XOR: bool = false;

    /// Constructs the element whose binary representation is `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= Self::ORDER`.
    fn from_index(v: usize) -> Self;

    /// The binary representation of the element, in `0..Self::ORDER`.
    fn index(self) -> usize;

    /// Whether this is the additive identity.
    #[inline]
    fn is_zero(self) -> bool {
        self == Self::ZERO
    }

    /// Field addition (XOR). Identical to subtraction in characteristic 2.
    fn gf_add(self, rhs: Self) -> Self;

    /// Field multiplication.
    fn gf_mul(self, rhs: Self) -> Self;

    /// Multiplicative inverse, or `None` for the zero element.
    fn gf_inv(self) -> Option<Self>;

    /// Checked division: `None` when `rhs` is zero.
    #[inline]
    fn gf_div(self, rhs: Self) -> Option<Self> {
        rhs.gf_inv().map(|i| self.gf_mul(i))
    }

    /// Exponentiation in the field (with `0^0 == 1`).
    fn gf_pow(self, e: u64) -> Self;

    /// A uniformly random field element (zero included).
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::from_index(rng.gen_range(0..Self::ORDER))
    }

    /// A uniformly random *nonzero* field element, as required for the
    /// coding coefficients of SLC/PLC (the paper draws coefficients that
    /// are "nonzero random number\[s\] uniformly chosen from a Galois
    /// field").
    fn random_nonzero<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::from_index(rng.gen_range(1..Self::ORDER))
    }

    /// `dst[i] += c * src[i]` for all `i` — the inner loop of Gaussian and
    /// Gauss–Jordan elimination. Dispatches through [`crate::kernel`].
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    fn axpy(dst: &mut [Self], c: Self, src: &[Self]) {
        crate::kernel::axpy(dst, c, src);
    }

    /// `dst[i] *= c` for all `i`. Dispatches through [`crate::kernel`].
    fn scale_slice(dst: &mut [Self], c: Self) {
        crate::kernel::scale_slice(dst, c);
    }

    /// `dst[i] += src[i]` for all `i`. Dispatches through
    /// [`crate::kernel`].
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    fn add_slice(dst: &mut [Self], src: &[Self]) {
        crate::kernel::add_slice(dst, src);
    }

    /// Elementwise product `dst[i] *= src[i]` for all `i`. Dispatches
    /// through [`crate::kernel`].
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    fn mul_slice(dst: &mut [Self], src: &[Self]) {
        crate::kernel::mul_slice(dst, src);
    }

    /// Dot product `sum_i a[i] * b[i]`. Dispatches through
    /// [`crate::kernel`].
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    fn dot(a: &[Self], b: &[Self]) -> Self {
        crate::kernel::dot(a, b)
    }
}

macro_rules! gf_type {
    (
        $(#[$meta:meta])*
        $name:ident, $repr:ty, $bits:expr, $poly:expr, $tables_fn:ident,
        overrides { $($overrides:tt)* }
    ) => {
        $(#[$meta])*
        #[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        #[repr(transparent)]
        pub struct $name($repr);

        fn $tables_fn() -> &'static GfTables {
            static TABLES: OnceLock<GfTables> = OnceLock::new();
            TABLES.get_or_init(|| GfTables::build($bits, $poly))
        }

        impl $name {
            /// Constructs the element with binary representation `v`
            /// without bounds checking beyond the repr width.
            #[inline]
            pub const fn new(v: $repr) -> Self {
                $name(v)
            }

            /// The raw binary representation.
            #[inline]
            pub const fn raw(self) -> $repr {
                self.0
            }
        }

        impl GfElem for $name {
            const ORDER: usize = 1 << $bits;
            const BITS: u32 = $bits;
            const ZERO: Self = $name(0);
            const ONE: Self = $name(1);
            // Addition is XOR of the raw repr, and XOR of two valid
            // representations stays below `ORDER`.
            const REPR_XOR: bool = true;

            #[inline]
            fn from_index(v: usize) -> Self {
                assert!(v < Self::ORDER, "value {v} outside GF(2^{})", $bits);
                $name(v as $repr)
            }

            #[inline]
            fn index(self) -> usize {
                self.0 as usize
            }

            #[inline]
            fn gf_add(self, rhs: Self) -> Self {
                $name(self.0 ^ rhs.0)
            }

            #[inline]
            fn gf_mul(self, rhs: Self) -> Self {
                $name($tables_fn().mul(self.0 as u32, rhs.0 as u32) as $repr)
            }

            #[inline]
            fn gf_inv(self) -> Option<Self> {
                $tables_fn().inv(self.0 as u32).map(|v| $name(v as $repr))
            }

            #[inline]
            fn gf_pow(self, e: u64) -> Self {
                $name($tables_fn().pow(self.0 as u32, e) as $repr)
            }

            $($overrides)*
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl fmt::UpperHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::UpperHex::fmt(&self.0, f)
            }
        }

        impl fmt::Binary for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Binary::fmt(&self.0, f)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(v: $name) -> usize {
                v.index()
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                self.gf_add(rhs)
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                self.gf_add(rhs)
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                self
            }
        }

        impl Mul for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: Self) -> Self {
                self.gf_mul(rhs)
            }
        }

        impl Div for $name {
            type Output = Self;
            /// # Panics
            ///
            /// Panics when dividing by zero; use [`GfElem::gf_div`] for a
            /// checked alternative.
            #[inline]
            fn div(self, rhs: Self) -> Self {
                self.gf_div(rhs)
                    .expect(concat!(stringify!($name), ": division by zero"))
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                *self = self.gf_add(rhs);
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                *self = self.gf_add(rhs);
            }
        }

        impl MulAssign for $name {
            #[inline]
            fn mul_assign(&mut self, rhs: Self) {
                *self = self.gf_mul(rhs);
            }
        }
    };
}

gf_type!(
    /// An element of GF(2⁴) = GF(2)\[x\]/(x⁴+x+1), stored in the low nibble
    /// of a `u8`.
    Gf16,
    u8,
    4,
    POLY_GF16,
    gf16_tables,
    overrides {}
);

gf_type!(
    /// An element of GF(2⁸) = GF(2)\[x\]/(x⁸+x⁴+x³+x²+1) — the field used
    /// throughout the paper's evaluation. Its bulk slice operations hit
    /// the table/SIMD fast paths inside [`crate::kernel`].
    Gf256,
    u8,
    8,
    POLY_GF256,
    gf256_tables,
    overrides {}
);

gf_type!(
    /// An element of GF(2¹⁶) = GF(2)\[x\]/(x¹⁶+x¹²+x³+x+1).
    Gf64k,
    u16,
    16,
    POLY_GF64K,
    gf64k_tables,
    overrides {}
);

fn mul256_table() -> &'static Mul256Table {
    static TABLE: OnceLock<Mul256Table> = OnceLock::new();
    TABLE.get_or_init(|| Mul256Table::build(gf256_tables()))
}

/// The 64 KiB GF(2⁸) product table, shared with [`crate::kernel`] (which
/// builds its table-backend and SIMD nibble tables from its rows).
pub(crate) fn gf256_product_table() -> &'static Mul256Table {
    mul256_table()
}

impl Gf256 {
    /// The full 256-entry product row `{self * v : v in 0..256}`.
    ///
    /// Exposed so decoding hot loops outside this crate can hoist the row
    /// lookup out of their inner loop.
    #[inline]
    pub fn mul_row(self) -> &'static [u8; 256] {
        mul256_table().row(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constants_behave() {
        assert_eq!(Gf256::ZERO + Gf256::ONE, Gf256::ONE);
        assert_eq!(Gf256::ONE * Gf256::ONE, Gf256::ONE);
        assert!(Gf256::ZERO.is_zero());
        assert!(!Gf256::ONE.is_zero());
        assert_eq!(Gf256::default(), Gf256::ZERO);
    }

    #[test]
    fn add_is_self_inverse() {
        let a = Gf256::from_index(0xAB);
        let b = Gf256::from_index(0x3C);
        assert_eq!(a + b + b, a);
        assert_eq!(a - a, Gf256::ZERO);
        assert_eq!(-a, a);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = Gf256::ONE / Gf256::ZERO;
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn from_index_rejects_out_of_range() {
        let _ = Gf16::from_index(16);
    }

    #[test]
    fn random_nonzero_is_never_zero() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            assert!(!Gf16::random_nonzero(&mut rng).is_zero());
        }
    }

    #[test]
    fn dispatched_axpy_matches_generic_formula_for_gf256() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let n = rng.gen_range(0..100);
            let src: Vec<Gf256> = (0..n).map(|_| Gf256::random(&mut rng)).collect();
            let base: Vec<Gf256> = (0..n).map(|_| Gf256::random(&mut rng)).collect();
            let c = Gf256::random(&mut rng);

            let mut fast = base.clone();
            <Gf256 as GfElem>::axpy(&mut fast, c, &src);

            let mut slow = base.clone();
            for (d, s) in slow.iter_mut().zip(&src) {
                *d = d.gf_add(c.gf_mul(*s));
            }
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn trait_axpy_uses_fast_path_for_gf256() {
        // The trait method must agree with the slow formula (it routes
        // through the dispatched kernel backend).
        let mut rng = StdRng::seed_from_u64(43);
        let src: Vec<Gf256> = (0..64).map(|_| Gf256::random(&mut rng)).collect();
        let mut dst: Vec<Gf256> = (0..64).map(|_| Gf256::random(&mut rng)).collect();
        let expect: Vec<Gf256> = dst
            .iter()
            .zip(&src)
            .map(|(d, s)| d.gf_add(Gf256::from_index(9).gf_mul(*s)))
            .collect();
        <Gf256 as GfElem>::axpy(&mut dst, Gf256::from_index(9), &src);
        assert_eq!(dst, expect);
    }

    #[test]
    fn dot_product_is_bilinear() {
        let mut rng = StdRng::seed_from_u64(5);
        let a: Vec<Gf64k> = (0..16).map(|_| Gf64k::random(&mut rng)).collect();
        let b: Vec<Gf64k> = (0..16).map(|_| Gf64k::random(&mut rng)).collect();
        let c: Vec<Gf64k> = (0..16).map(|_| Gf64k::random(&mut rng)).collect();
        let bc: Vec<Gf64k> = b.iter().zip(&c).map(|(x, y)| *x + *y).collect();
        assert_eq!(Gf64k::dot(&a, &bc), Gf64k::dot(&a, &b) + Gf64k::dot(&a, &c));
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        assert_eq!(format!("{}", Gf256::ZERO), "0x0");
        assert_eq!(format!("{:?}", Gf256::ONE), "Gf256(0x1)");
        assert_eq!(format!("{:x}", Gf256::from_index(0xAB)), "ab");
        assert_eq!(format!("{:X}", Gf256::from_index(0xAB)), "AB");
        assert_eq!(format!("{:b}", Gf16::from_index(0b101)), "101");
    }

    #[test]
    fn pow_fermat_all_fields() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let a = Gf16::random_nonzero(&mut rng);
            assert_eq!(a.gf_pow(15), Gf16::ONE);
            let b = Gf256::random_nonzero(&mut rng);
            assert_eq!(b.gf_pow(255), Gf256::ONE);
            let c = Gf64k::random_nonzero(&mut rng);
            assert_eq!(c.gf_pow(65535), Gf64k::ONE);
        }
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Gf16>();
        assert_send_sync::<Gf256>();
        assert_send_sync::<Gf64k>();
    }
}
