//! # PRLC — Priority Random Linear Codes
//!
//! A full reproduction of *"Differentiated Data Persistence with Priority
//! Random Linear Codes"* (Yunfeng Lin, Baochun Li, Ben Liang — ICDCS
//! 2007) as a Rust workspace:
//!
//! | Module | Crate | Paper section |
//! |--------|-------|---------------|
//! | [`gf`] | `prlc-gf` | GF(2⁸) arithmetic (Sec. 3.1, footnote 1) |
//! | [`linalg`] | `prlc-linalg` | progressive Gauss–Jordan / RREF decoding (Sec. 3.2, Fig. 2) |
//! | [`core`] | `prlc-core` | SLC & PLC codes + RLC/replication/Growth-Codes baselines (Sec. 3.1) |
//! | [`analysis`] | `prlc-analysis` | decoding-performance analysis & feasibility design (Sec. 3.3–3.4) |
//! | [`net`] | `prlc-net` | geometric networks & pre-distribution protocol (Sec. 2, 4) |
//! | [`sim`] | `prlc-sim` | evaluation harness: curves, CIs, tables (Sec. 5) |
//! | [`obs`] | `prlc-obs` | opt-in deterministic metrics/tracing across every layer |
//!
//! The [`prelude`] re-exports the names needed by typical applications;
//! the `examples/` directory contains runnable end-to-end scenarios and
//! `prlc-bench` regenerates every table and figure of the paper's
//! evaluation.
//!
//! # Quick start
//!
//! ```
//! use prlc::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = StdRng::seed_from_u64(1);
//! // 10 source blocks: 2 critical, 8 bulk.
//! let profile = PriorityProfile::new(vec![2, 8])?;
//! let sources: Vec<Vec<Gf256>> =
//!     (0..10).map(|_| vec![Gf256::random(&mut rng)]).collect();
//!
//! let encoder = Encoder::new(Scheme::Plc, profile.clone());
//! let mut decoder = PlcDecoder::with_payloads(profile);
//! // Two critical-level blocks decode the critical data immediately.
//! for _ in 0..2 {
//!     decoder.insert_block(&encoder.encode(0, &sources, &mut rng));
//! }
//! assert_eq!(decoder.decoded_levels(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use prlc_analysis as analysis;
pub use prlc_core as core;
pub use prlc_gf as gf;
pub use prlc_linalg as linalg;
pub use prlc_net as net;
pub use prlc_obs as obs;
pub use prlc_sim as sim;

/// The names most applications need.
pub mod prelude {
    pub use prlc_analysis::{
        curves, design, overhead, solve_feasibility, AnalysisOptions, DecodabilityModel,
        FeasibilityProblem, FullRecoveryConstraint, SolverOptions,
    };
    pub use prlc_core::{
        baseline, CodedBlock, CompactBlock, DecodingConstraint, Degree, Encoder, InsertOutcome,
        PlcDecoder, PriorityDecoder, PriorityDistribution, PriorityProfile, RlcDecoder, Scheme,
        SeededEncoder, SlcDecoder, UtilityFunction,
    };
    pub use prlc_gf::{Gf16, Gf256, Gf64k, GfElem};
    pub use prlc_linalg::{CoeffRep, CoeffRow, Matrix, ProgressiveRref};
    pub use prlc_net::{
        collect, predistribute, refresh, Churn, CollectionConfig, Network, NodeId, PlaneNetwork,
        ProtocolConfig, RefreshConfig, RingNetwork, SourceFanout,
    };
    pub use prlc_sim::{
        simulate_decoding_curve, simulate_persistence_timeline, simulate_survivability,
        CurveConfig, Persistence, SurvivabilityConfig, TimelineConfig,
    };
}
