//! Cross-validation between the three independent implementations of
//! "how many levels decode": the analytical model (`prlc-analysis`), the
//! in-memory simulation (`prlc-sim` over the real decoders), and the
//! networked pipeline (`prlc-net`). This is the integration-level
//! version of the paper's Sec. 5.1 validation.

use prlc::prelude::*;
use prlc::sim::{simulate_decoding_curve, CurveConfig, Persistence};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Analysis and simulation agree along the whole curve for both priority
/// schemes (paper Figs. 4 and 5 at reduced scale).
#[test]
fn analysis_matches_simulation_along_the_curve() {
    let profile = PriorityProfile::uniform(5, 12).unwrap();
    let dist = PriorityDistribution::uniform(5);
    let opts = AnalysisOptions::sharp();
    for scheme in [Scheme::Slc, Scheme::Plc] {
        let curve = simulate_decoding_curve::<Gf256>(&CurveConfig {
            persistence: Persistence::Coding(scheme),
            profile: profile.clone(),
            distribution: dist.clone(),
            max_blocks: 120,
            runs: 80,
            seed: 21,
        });
        for m in (0..=120).step_by(12) {
            let analytic = curves::expected_levels(scheme, &profile, &dist, m, &opts);
            let sim = curve.summaries[m].mean;
            assert!(
                (sim - analytic).abs() < 0.3,
                "{scheme} m={m}: sim {sim} vs analysis {analytic}"
            );
        }
    }
}

/// The rank-exact model is a strictly better predictor than the sharp
/// model can be at the completion knee (where GF(256) singularities
/// actually bite), and never optimistic relative to sharp.
#[test]
fn rank_exact_model_is_consistent() {
    let profile = PriorityProfile::flat(40).unwrap();
    let dist = PriorityDistribution::uniform(1);
    let sharp = AnalysisOptions::sharp();
    let exact = AnalysisOptions::rank_exact(256.0);
    for m in 40..=50 {
        let ps = curves::prob_complete(Scheme::Plc, &profile, &dist, m, &sharp);
        let pe = curves::prob_complete(Scheme::Plc, &profile, &dist, m, &exact);
        assert!(pe <= ps + 1e-12, "m={m}");
        assert!(ps - pe < 0.01, "m={m}: correction too large");
    }
    // At exactly m = N the sharp model says certainty; reality (and the
    // rank model) say slightly less.
    assert_eq!(
        curves::prob_complete(Scheme::Plc, &profile, &dist, 40, &sharp),
        1.0
    );
    let pe = curves::prob_complete(Scheme::Plc, &profile, &dist, 40, &exact);
    assert!(pe < 1.0 && pe > 0.98);
}

/// A distribution designed by the feasibility solver delivers its
/// promised decoding behaviour in simulation with the real decoder.
#[test]
fn designed_distribution_validates_in_simulation() {
    let profile = PriorityProfile::new(vec![5, 10, 35]).unwrap();
    let problem = FeasibilityProblem {
        scheme: Scheme::Plc,
        profile: profile.clone(),
        constraints: vec![
            DecodingConstraint::new(30, 1.0),
            DecodingConstraint::new(60, 2.0),
        ],
        full_recovery: Some(FullRecoveryConstraint {
            alpha: 2.0,
            epsilon: 0.01,
        }),
        options: AnalysisOptions::sharp(),
        tolerance: 0.0,
    };
    let sol = solve_feasibility(
        &problem,
        &SolverOptions {
            max_evaluations: 4000,
            restarts: 10,
            seed: 5,
        },
    );
    assert!(sol.feasible, "solver failed: penalty {}", sol.penalty);

    let curve = simulate_decoding_curve::<Gf256>(&CurveConfig {
        persistence: Persistence::Coding(Scheme::Plc),
        profile,
        distribution: sol.distribution.clone(),
        max_blocks: 100,
        runs: 100,
        seed: 31,
    });
    // Simulated means at the constraint points honour the constraints
    // (tolerance: CI of 100 runs plus the sharp-model gap).
    assert!(
        curve.summaries[30].mean > 1.0 - 0.2,
        "E(X_30) simulated {}",
        curve.summaries[30].mean
    );
    assert!(
        curve.summaries[60].mean > 2.0 - 0.2,
        "E(X_60) simulated {}",
        curve.summaries[60].mean
    );
}

/// The networked pipeline and the in-memory simulation tell the same
/// story: mean decoded levels after collecting M blocks from the ring
/// match the in-memory curve at M (they use the very same decoder).
#[test]
fn network_collection_matches_in_memory_curve() {
    let profile = PriorityProfile::new(vec![4, 8, 12]).unwrap();
    let dist = PriorityDistribution::uniform(3);
    let locations = 48usize;

    // In-memory curve.
    let curve = simulate_decoding_curve::<Gf256>(&CurveConfig {
        persistence: Persistence::Coding(Scheme::Plc),
        profile: profile.clone(),
        distribution: dist.clone(),
        max_blocks: locations,
        runs: 60,
        seed: 77,
    });

    // Networked: collect everything from a healthy ring, record the
    // trajectory, average over seeds.
    let runs = 30usize;
    let mut traj_sum = vec![0.0f64; locations + 1];
    let mut counted = vec![0usize; locations + 1];
    for seed in 0..runs as u64 {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let net = RingNetwork::new(120, &mut rng);
        let data: Vec<Vec<Gf256>> = vec![Vec::new(); profile.total_blocks()];
        let dep = predistribute(
            &net,
            &ProtocolConfig {
                scheme: Scheme::Plc,
                profile: profile.clone(),
                distribution: dist.clone(),
                locations,
                fanout: SourceFanout::All,
                coeff_rep: CoeffRep::Dense,
                two_choices: true,
                node_capacity: None,
                shared_seed: seed,
            },
            &data,
            &mut rng,
        )
        .unwrap();
        let mut dec: PlcDecoder<Gf256, ()> = PlcDecoder::coefficients_only(profile.clone());
        let collector = net.random_alive_node(&mut rng).unwrap();
        let report = collect(
            &net,
            &dep,
            &mut dec,
            collector,
            &CollectionConfig::default(),
            &mut rng,
        )
        .unwrap();
        for (i, &lvl) in report.levels_after_block.iter().enumerate() {
            traj_sum[i + 1] += lvl as f64;
            counted[i + 1] += 1;
        }
    }
    for m in [16usize, 32, 48] {
        if counted[m] < runs / 2 {
            continue; // early-stopped trajectories do not reach here
        }
        let net_mean = traj_sum[m] / counted[m] as f64;
        let mem_mean = curve.summaries[m].mean;
        assert!(
            (net_mean - mem_mean).abs() < 0.45,
            "m={m}: network {net_mean} vs in-memory {mem_mean}"
        );
    }
}

/// The fault path agrees with the analysis closed-forms: per-level
/// decode frequencies of lossy collection (30% loss, one retry) over
/// iid-level deployments match `curves::survival` — the SLC
/// eq. 1–6 / PLC Theorem 1 probabilities evaluated at each run's
/// delivered block count — within binomial-CI tolerance.
///
/// The real protocol's `allocate` split produces deterministic level
/// counts, which the multinomial closed forms do not model; the
/// deployment here is built by hand via `Deployment::from_slots` with
/// iid-sampled levels on distinct nodes, so that conditional on the
/// number of delivered blocks the delivered composition is exactly the
/// iid sampling model the analysis assumes (losses are independent of
/// block levels).
#[test]
fn lossy_collection_matches_analysis_survival() {
    use prlc::net::{collect_with_faults, Deployment, FaultPlan, NodeId, RetryPolicy, StorageSlot};
    use rand::seq::SliceRandom;

    let profile = PriorityProfile::new(vec![2, 2]).unwrap();
    let n = profile.num_levels();
    let dist = PriorityDistribution::from_weights(vec![0.45, 0.55]).unwrap();
    let opts = AnalysisOptions::rank_exact(256.0);
    let nodes = 32usize;
    let locations = 12usize; // M
    let runs = 400usize;

    for scheme in [Scheme::Slc, Scheme::Plc] {
        let encoder = Encoder::new(scheme, profile.clone());
        let mut empirical = vec![0.0f64; n + 1];
        let mut analytic = vec![0.0f64; n + 1];
        for run in 0..runs as u64 {
            let mut rng = StdRng::seed_from_u64(0xC0DE + run);
            let net = RingNetwork::new(nodes, &mut rng);
            let mut ids: Vec<usize> = (0..nodes).collect();
            ids.shuffle(&mut rng);
            let slots: Vec<StorageSlot<Gf256>> = ids[..locations]
                .iter()
                .map(|&node| {
                    let level = dist.sample_level(&mut rng);
                    StorageSlot {
                        node: NodeId::new(node),
                        level,
                        block: encoder.encode_unpayloaded(level, &mut rng),
                    }
                })
                .collect();
            let dep = Deployment::from_slots(slots, profile.clone());

            let plan = FaultPlan::lossy(0.3, RetryPolicy::with_retries(1, 1), 0xFA17 + run);
            let mut faults = plan.session(net.node_count());
            // A target above the level count disables early stopping, so
            // every delivered block reaches the decoder and
            // `blocks_collected` is exactly the closed forms' m.
            let cfg = CollectionConfig {
                target_levels: Some(n + 1),
            };
            let collector = net.random_alive_node(&mut rng).unwrap();
            let (m, levels) = match scheme {
                Scheme::Slc => {
                    let mut dec: SlcDecoder<Gf256, ()> =
                        SlcDecoder::coefficients_only(profile.clone());
                    let r = collect_with_faults(
                        &net,
                        &dep,
                        &mut dec,
                        collector,
                        &cfg,
                        &mut faults,
                        &mut rng,
                    )
                    .unwrap();
                    (r.blocks_collected, dec.decoded_levels())
                }
                _ => {
                    let mut dec: PlcDecoder<Gf256, ()> =
                        PlcDecoder::coefficients_only(profile.clone());
                    let r = collect_with_faults(
                        &net,
                        &dep,
                        &mut dec,
                        collector,
                        &cfg,
                        &mut faults,
                        &mut rng,
                    )
                    .unwrap();
                    (r.blocks_collected, dec.decoded_levels())
                }
            };
            for k in 1..=n {
                if levels >= k {
                    empirical[k] += 1.0;
                }
                analytic[k] += curves::survival(scheme, &profile, &dist, m, k, &opts);
            }
        }
        for k in 1..=n {
            let emp = empirical[k] / runs as f64;
            let ana = analytic[k] / runs as f64;
            // 3σ binomial CI on the empirical frequency, plus a small
            // model-mismatch allowance.
            let p = ana.clamp(0.05, 0.95);
            let tol = 3.0 * (p * (1.0 - p) / runs as f64).sqrt() + 0.03;
            assert!(
                (emp - ana).abs() < tol,
                "{scheme} Pr(X>={k}): empirical {emp:.4} vs analytic {ana:.4} (tol {tol:.4})"
            );
        }
    }
}
