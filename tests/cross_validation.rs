//! Cross-validation between the three independent implementations of
//! "how many levels decode": the analytical model (`prlc-analysis`), the
//! in-memory simulation (`prlc-sim` over the real decoders), and the
//! networked pipeline (`prlc-net`). This is the integration-level
//! version of the paper's Sec. 5.1 validation.

use prlc::prelude::*;
use prlc::sim::{simulate_decoding_curve, CurveConfig, Persistence};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Analysis and simulation agree along the whole curve for both priority
/// schemes (paper Figs. 4 and 5 at reduced scale).
#[test]
fn analysis_matches_simulation_along_the_curve() {
    let profile = PriorityProfile::uniform(5, 12).unwrap();
    let dist = PriorityDistribution::uniform(5);
    let opts = AnalysisOptions::sharp();
    for scheme in [Scheme::Slc, Scheme::Plc] {
        let curve = simulate_decoding_curve::<Gf256>(&CurveConfig {
            persistence: Persistence::Coding(scheme),
            profile: profile.clone(),
            distribution: dist.clone(),
            max_blocks: 120,
            runs: 80,
            seed: 21,
        });
        for m in (0..=120).step_by(12) {
            let analytic = curves::expected_levels(scheme, &profile, &dist, m, &opts);
            let sim = curve.summaries[m].mean;
            assert!(
                (sim - analytic).abs() < 0.3,
                "{scheme} m={m}: sim {sim} vs analysis {analytic}"
            );
        }
    }
}

/// The rank-exact model is a strictly better predictor than the sharp
/// model can be at the completion knee (where GF(256) singularities
/// actually bite), and never optimistic relative to sharp.
#[test]
fn rank_exact_model_is_consistent() {
    let profile = PriorityProfile::flat(40).unwrap();
    let dist = PriorityDistribution::uniform(1);
    let sharp = AnalysisOptions::sharp();
    let exact = AnalysisOptions::rank_exact(256.0);
    for m in 40..=50 {
        let ps = curves::prob_complete(Scheme::Plc, &profile, &dist, m, &sharp);
        let pe = curves::prob_complete(Scheme::Plc, &profile, &dist, m, &exact);
        assert!(pe <= ps + 1e-12, "m={m}");
        assert!(ps - pe < 0.01, "m={m}: correction too large");
    }
    // At exactly m = N the sharp model says certainty; reality (and the
    // rank model) say slightly less.
    assert_eq!(
        curves::prob_complete(Scheme::Plc, &profile, &dist, 40, &sharp),
        1.0
    );
    let pe = curves::prob_complete(Scheme::Plc, &profile, &dist, 40, &exact);
    assert!(pe < 1.0 && pe > 0.98);
}

/// A distribution designed by the feasibility solver delivers its
/// promised decoding behaviour in simulation with the real decoder.
#[test]
fn designed_distribution_validates_in_simulation() {
    let profile = PriorityProfile::new(vec![5, 10, 35]).unwrap();
    let problem = FeasibilityProblem {
        scheme: Scheme::Plc,
        profile: profile.clone(),
        constraints: vec![
            DecodingConstraint::new(30, 1.0),
            DecodingConstraint::new(60, 2.0),
        ],
        full_recovery: Some(FullRecoveryConstraint {
            alpha: 2.0,
            epsilon: 0.01,
        }),
        options: AnalysisOptions::sharp(),
        tolerance: 0.0,
    };
    let sol = solve_feasibility(
        &problem,
        &SolverOptions {
            max_evaluations: 4000,
            restarts: 10,
            seed: 5,
        },
    );
    assert!(sol.feasible, "solver failed: penalty {}", sol.penalty);

    let curve = simulate_decoding_curve::<Gf256>(&CurveConfig {
        persistence: Persistence::Coding(Scheme::Plc),
        profile,
        distribution: sol.distribution.clone(),
        max_blocks: 100,
        runs: 100,
        seed: 31,
    });
    // Simulated means at the constraint points honour the constraints
    // (tolerance: CI of 100 runs plus the sharp-model gap).
    assert!(
        curve.summaries[30].mean > 1.0 - 0.2,
        "E(X_30) simulated {}",
        curve.summaries[30].mean
    );
    assert!(
        curve.summaries[60].mean > 2.0 - 0.2,
        "E(X_60) simulated {}",
        curve.summaries[60].mean
    );
}

/// The networked pipeline and the in-memory simulation tell the same
/// story: mean decoded levels after collecting M blocks from the ring
/// match the in-memory curve at M (they use the very same decoder).
#[test]
fn network_collection_matches_in_memory_curve() {
    let profile = PriorityProfile::new(vec![4, 8, 12]).unwrap();
    let dist = PriorityDistribution::uniform(3);
    let locations = 48usize;

    // In-memory curve.
    let curve = simulate_decoding_curve::<Gf256>(&CurveConfig {
        persistence: Persistence::Coding(Scheme::Plc),
        profile: profile.clone(),
        distribution: dist.clone(),
        max_blocks: locations,
        runs: 60,
        seed: 77,
    });

    // Networked: collect everything from a healthy ring, record the
    // trajectory, average over seeds.
    let runs = 30usize;
    let mut traj_sum = vec![0.0f64; locations + 1];
    let mut counted = vec![0usize; locations + 1];
    for seed in 0..runs as u64 {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let net = RingNetwork::new(120, &mut rng);
        let data: Vec<Vec<Gf256>> = vec![Vec::new(); profile.total_blocks()];
        let dep = predistribute(
            &net,
            &ProtocolConfig {
                scheme: Scheme::Plc,
                profile: profile.clone(),
                distribution: dist.clone(),
                locations,
                fanout: SourceFanout::All,
                two_choices: true,
                node_capacity: None,
                shared_seed: seed,
            },
            &data,
            &mut rng,
        )
        .unwrap();
        let mut dec: PlcDecoder<Gf256, ()> = PlcDecoder::coefficients_only(profile.clone());
        let collector = net.random_alive_node(&mut rng).unwrap();
        let report = collect(
            &net,
            &dep,
            &mut dec,
            collector,
            &CollectionConfig::default(),
            &mut rng,
        )
        .unwrap();
        for (i, &lvl) in report.levels_after_block.iter().enumerate() {
            traj_sum[i + 1] += lvl as f64;
            counted[i + 1] += 1;
        }
    }
    for m in [16usize, 32, 48] {
        if counted[m] < runs / 2 {
            continue; // early-stopped trajectories do not reach here
        }
        let net_mean = traj_sum[m] / counted[m] as f64;
        let mem_mean = curve.summaries[m].mean;
        assert!(
            (net_mean - mem_mean).abs() < 0.45,
            "m={m}: network {net_mean} vs in-memory {mem_mean}"
        );
    }
}
