//! Conservation invariants of the `prlc-obs` network counters: the
//! metrics recorder must tell the same story as the fault layer's own
//! report structs, checked here *from the recorder side*.
//!
//! Every physical transmission either arrives or is lost, so across any
//! workload `net.messages.sent == net.messages.delivered +
//! net.messages.lost`; and because a retry is only spent on a lost
//! transmission while the final loss of an abandoned or unreachable
//! exchange is not retried, `net.retries <= net.messages.lost <=
//! net.retries + net.gave_up + net.unreachable`.

use prlc::obs;
use prlc::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

use prlc::net::{
    collect_with_faults, predistribute_with_faults, ChurnEvent, FaultPlan, LinkModel, RetryPolicy,
};

/// The obs registry is process-global; tests that enable it and read
/// counter deltas must not interleave.
static GUARD: Mutex<()> = Mutex::new(());

fn counter(snap: &obs::Snapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

/// Runs one predistribute + collect workload under the given fault knobs
/// and returns the recorder's message-counter deltas as
/// `(sent, delivered, lost, retries, gave_up, unreachable)`.
fn message_deltas(
    seed: u64,
    loss: f64,
    retries: usize,
    churn_fraction: f64,
) -> (u64, u64, u64, u64, u64, u64) {
    let before = obs::snapshot();

    let mut rng = StdRng::seed_from_u64(seed);
    let net = RingNetwork::new(50, &mut rng);
    let profile = PriorityProfile::new(vec![2, 4]).unwrap();
    let data: Vec<Vec<Gf256>> = vec![Vec::new(); profile.total_blocks()];
    let plan = FaultPlan {
        link: LinkModel {
            loss,
            timeout_hops: None,
        },
        retry: RetryPolicy::with_retries(retries, 1),
        churn: vec![ChurnEvent {
            after_messages: 15,
            fraction: churn_fraction,
        }],
        seed: seed ^ 0x0B5,
    };
    let mut faults = plan.session(net.node_count());
    let dep = predistribute_with_faults(
        &net,
        &ProtocolConfig {
            scheme: Scheme::Plc,
            profile: profile.clone(),
            distribution: PriorityDistribution::uniform(2),
            locations: 24,
            fanout: SourceFanout::All,
            coeff_rep: CoeffRep::Dense,
            two_choices: true,
            node_capacity: None,
            shared_seed: seed,
        },
        &data,
        &mut faults,
        &mut rng,
    )
    .unwrap();
    let mut dec: PlcDecoder<Gf256, ()> = PlcDecoder::coefficients_only(profile);
    if let Some(collector) = net.random_alive_node(&mut rng) {
        if !faults.is_down(collector) {
            let _ = collect_with_faults(
                &net,
                &dep,
                &mut dec,
                collector,
                &CollectionConfig::default(),
                &mut faults,
                &mut rng,
            );
        }
    }

    let after = obs::snapshot();
    let d = |name: &str| counter(&after, name) - counter(&before, name);
    (
        d("net.messages.sent"),
        d("net.messages.delivered"),
        d("net.messages.lost"),
        d("net.retries"),
        d("net.gave_up"),
        d("net.unreachable"),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn recorder_counters_conserve_messages(
        seed in 0u64..100_000,
        loss in 0.0f64..0.7,
        retries in 0usize..4,
        churn_fraction in 0.0f64..0.3,
    ) {
        let _guard = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        obs::enable();
        let (sent, delivered, lost, retried, gave_up, unreachable) =
            message_deltas(seed, loss, retries, churn_fraction);

        // A non-trivial workload actually moved traffic.
        prop_assert!(sent > 0, "workload sent no messages");

        // Every transmission either arrives or is lost.
        prop_assert_eq!(
            sent,
            delivered + lost,
            "sent {} != delivered {} + lost {}",
            sent,
            delivered,
            lost
        );

        // Retries are spent only on losses; the terminal loss of each
        // abandoned or unreachable exchange is never retried.
        prop_assert!(retried <= lost, "retries {retried} > lost {lost}");
        prop_assert!(
            lost <= retried + gave_up + unreachable,
            "lost {} > retries {} + gave_up {} + unreachable {}",
            lost,
            retried,
            gave_up,
            unreachable
        );
    }
}

/// Lossless transport is silent on the loss-side counters, whatever the
/// retry budget — the disabled-by-default recorder aside, a perfect link
/// must not fabricate faults.
#[test]
fn perfect_link_records_no_losses() {
    let _guard = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    obs::enable();
    let (sent, delivered, lost, retried, gave_up, unreachable) = message_deltas(42, 0.0, 3, 0.0);
    assert!(sent > 0);
    assert_eq!(sent, delivered);
    assert_eq!((lost, retried, gave_up, unreachable), (0, 0, 0, 0));
}
