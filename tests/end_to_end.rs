//! End-to-end integration tests: source data → pre-distribution →
//! failures → collection → payload-exact recovery, across both network
//! substrates and both priority codes.

use prlc::net::{collect_with_faults, ChurnEvent, FaultPlan, LinkModel, RetryPolicy};
use prlc::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sources(rng: &mut StdRng, n: usize, blk: usize) -> Vec<Vec<Gf256>> {
    (0..n)
        .map(|_| (0..blk).map(|_| Gf256::random(rng)).collect())
        .collect()
}

#[test]
fn ring_plc_full_pipeline_recovers_all_payloads() {
    let mut rng = StdRng::seed_from_u64(1);
    let net = RingNetwork::new(100, &mut rng);
    let profile = PriorityProfile::new(vec![5, 10, 15]).unwrap();
    let data = sources(&mut rng, 30, 8);

    let dep = predistribute(
        &net,
        &ProtocolConfig {
            scheme: Scheme::Plc,
            profile: profile.clone(),
            distribution: PriorityDistribution::uniform(3),
            locations: 90,
            fanout: SourceFanout::All,
            coeff_rep: CoeffRep::Dense,
            two_choices: true,
            node_capacity: None,
            shared_seed: 11,
        },
        &data,
        &mut rng,
    )
    .unwrap();

    let mut dec = PlcDecoder::with_payloads(profile);
    let collector = net.random_alive_node(&mut rng).unwrap();
    let report = collect(
        &net,
        &dep,
        &mut dec,
        collector,
        &CollectionConfig::default(),
        &mut rng,
    )
    .unwrap();
    assert!(report.target_reached);
    assert!(dec.is_complete());
    for (i, d) in data.iter().enumerate() {
        assert_eq!(dec.recovered(i).unwrap(), &d[..], "payload {i}");
    }
}

#[test]
fn plane_slc_pipeline_with_failures_prioritises_level_one() {
    // Across several seeds, level-1 survival under 45% sensor death must
    // be at least as common as level-3 survival, and strictly more
    // common overall (the differentiated-persistence claim).
    let mut level1_hits = 0;
    let mut level3_hits = 0;
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = PlaneNetwork::with_connectivity_radius(200, &mut rng);
        let profile = PriorityProfile::new(vec![4, 8, 18]).unwrap();
        let data = sources(&mut rng, 30, 4);
        let dep = predistribute(
            &net,
            &ProtocolConfig {
                scheme: Scheme::Slc,
                profile: profile.clone(),
                // Skew toward level 1, as a designed distribution would.
                distribution: PriorityDistribution::from_weights(vec![0.5, 0.3, 0.2]).unwrap(),
                locations: 80,
                fanout: SourceFanout::All,
                coeff_rep: CoeffRep::Dense,
                two_choices: true,
                node_capacity: None,
                shared_seed: seed,
            },
            &data,
            &mut rng,
        )
        .unwrap();

        net.fail_uniform(0.45, &mut rng);
        let Some(collector) = net.random_alive_node(&mut rng) else {
            continue;
        };
        let mut dec = SlcDecoder::with_payloads(profile.clone());
        collect(
            &net,
            &dep,
            &mut dec,
            collector,
            &CollectionConfig::default(),
            &mut rng,
        )
        .unwrap();
        if dec.level_complete(0) {
            level1_hits += 1;
            // Verify payloads when recovered.
            for i in profile.blocks_of(0) {
                assert_eq!(dec.recovered(i).unwrap(), &data[i][..]);
            }
        }
        if dec.level_complete(2) {
            level3_hits += 1;
        }
    }
    assert!(
        level1_hits >= level3_hits,
        "critical data less durable than bulk: {level1_hits} vs {level3_hits}"
    );
    assert!(
        level1_hits >= 5,
        "level 1 survived only {level1_hits}/8 runs"
    );
}

#[test]
fn early_stop_saves_collection_work() {
    let mut rng = StdRng::seed_from_u64(5);
    let net = RingNetwork::new(120, &mut rng);
    let profile = PriorityProfile::new(vec![3, 27]).unwrap();
    let data = sources(&mut rng, 30, 4);
    let dep = predistribute(
        &net,
        &ProtocolConfig {
            scheme: Scheme::Plc,
            profile: profile.clone(),
            distribution: PriorityDistribution::from_weights(vec![0.4, 0.6]).unwrap(),
            locations: 100,
            fanout: SourceFanout::All,
            coeff_rep: CoeffRep::Dense,
            two_choices: false,
            node_capacity: None,
            shared_seed: 3,
        },
        &data,
        &mut rng,
    )
    .unwrap();
    let collector = net.random_alive_node(&mut rng).unwrap();

    let mut partial = PlcDecoder::with_payloads(profile.clone());
    let early = collect(
        &net,
        &dep,
        &mut partial,
        collector,
        &CollectionConfig {
            target_levels: Some(1),
        },
        &mut rng,
    )
    .unwrap();

    let mut full = PlcDecoder::with_payloads(profile);
    let complete = collect(
        &net,
        &dep,
        &mut full,
        collector,
        &CollectionConfig::default(),
        &mut rng,
    )
    .unwrap();

    assert!(early.target_reached);
    assert!(
        early.blocks_collected < complete.blocks_collected,
        "early stop ({}) should collect fewer blocks than full decode ({})",
        early.blocks_collected,
        complete.blocks_collected
    );
}

#[test]
fn rlc_requires_full_collection_on_network_too() {
    let mut rng = StdRng::seed_from_u64(9);
    let net = RingNetwork::new(80, &mut rng);
    let profile = PriorityProfile::new(vec![4, 8]).unwrap();
    let data = sources(&mut rng, 12, 4);
    let dep = predistribute(
        &net,
        &ProtocolConfig {
            scheme: Scheme::Rlc,
            profile: profile.clone(),
            distribution: PriorityDistribution::uniform(2),
            locations: 30,
            fanout: SourceFanout::All,
            coeff_rep: CoeffRep::Dense,
            two_choices: true,
            node_capacity: None,
            shared_seed: 4,
        },
        &data,
        &mut rng,
    )
    .unwrap();
    let collector = net.random_alive_node(&mut rng).unwrap();
    let mut dec: RlcDecoder<Gf256> = RlcDecoder::with_payloads(profile);
    let report = collect(
        &net,
        &dep,
        &mut dec,
        collector,
        &CollectionConfig::default(),
        &mut rng,
    )
    .unwrap();
    // All-or-nothing: until the 12th innovative block, nothing decodes.
    for (i, &lvl) in report.levels_after_block.iter().enumerate() {
        if i + 1 < 12 {
            assert_eq!(lvl, 0, "RLC decoded early at block {}", i + 1);
        }
    }
    assert!(dec.is_complete());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// PLC partial decoding is monotone under arbitrary churn: in any
    /// seeded [`FaultPlan`] (loss × retry budget × one churn event), the
    /// decoded-level trajectory never regresses, every block in the
    /// decoded prefix is recovered bit-exact, level decodability is
    /// prefix-closed (level k+1 decodable ⇒ level k decodable), and an
    /// incomplete decode really is incomplete — the first undecoded
    /// level has at least one unrecovered block.
    #[test]
    fn plc_partial_decode_is_monotone_under_churn(
        seed in 0u64..10_000,
        loss in 0.0f64..0.5,
        retries in 0usize..3,
        churn_after in 5usize..40,
        churn_fraction in 0.0f64..0.4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = RingNetwork::new(60, &mut rng);
        let profile = PriorityProfile::new(vec![2, 3, 4]).unwrap();
        let data = sources(&mut rng, 9, 4);
        let dep = predistribute(
            &net,
            &ProtocolConfig {
                scheme: Scheme::Plc,
                profile: profile.clone(),
                distribution: PriorityDistribution::uniform(3),
                locations: 36,
                fanout: SourceFanout::All,
                coeff_rep: CoeffRep::Dense,
                two_choices: true,
                node_capacity: None,
                shared_seed: seed,
            },
            &data,
            &mut rng,
        )
        .unwrap();

        let plan = FaultPlan {
            link: LinkModel { loss, timeout_hops: None },
            retry: RetryPolicy::with_retries(retries, 1),
            churn: vec![ChurnEvent { after_messages: churn_after, fraction: churn_fraction }],
            seed: seed ^ 0xFA17,
        };
        let mut faults = plan.session(net.node_count());
        let mut dec = PlcDecoder::with_payloads(profile.clone());
        let collector = net.random_alive_node(&mut rng).unwrap();
        let report = collect_with_faults(
            &net,
            &dep,
            &mut dec,
            collector,
            &CollectionConfig::default(),
            &mut faults,
            &mut rng,
        )
        .expect("collector is alive at session start");

        // The decoded-level trajectory never regresses.
        for w in report.levels_after_block.windows(2) {
            prop_assert!(w[0] <= w[1], "trajectory regressed: {:?}", report.levels_after_block);
        }

        let x = dec.decoded_levels();
        let n = profile.num_levels();

        // Level decodability (all blocks of the level recovered) is
        // prefix-closed: level k+1 decodable implies level k decodable.
        let complete: Vec<bool> = (0..n)
            .map(|lvl| profile.blocks_of(lvl).all(|i| dec.recovered(i).is_some()))
            .collect();
        for k in 1..n {
            prop_assert!(
                !complete[k] || complete[k - 1],
                "level {} decodable but level {} is not (X={x})",
                k + 1,
                k
            );
        }

        // Every block in the decoded prefix is recovered bit-exact.
        for lvl in 0..x {
            for i in profile.blocks_of(lvl) {
                prop_assert_eq!(
                    dec.recovered(i).expect("block in decoded prefix"),
                    &data[i][..],
                    "level {} block {} corrupt", lvl + 1, i
                );
            }
        }

        // An incomplete decode is honest: the first undecoded level has
        // at least one unrecovered block.
        if x < n {
            prop_assert!(
                !complete[x],
                "X={x} but level {} is fully recovered",
                x + 1
            );
        }
    }
}

#[test]
fn deterministic_pipeline_given_seeds() {
    let run = || {
        let mut rng = StdRng::seed_from_u64(77);
        let net = RingNetwork::new(50, &mut rng);
        let profile = PriorityProfile::new(vec![2, 4]).unwrap();
        let data = sources(&mut rng, 6, 4);
        let dep = predistribute(
            &net,
            &ProtocolConfig {
                scheme: Scheme::Plc,
                profile: profile.clone(),
                distribution: PriorityDistribution::uniform(2),
                locations: 20,
                fanout: SourceFanout::Log { factor: 2.0 },
                coeff_rep: CoeffRep::Dense,
                two_choices: true,
                node_capacity: None,
                shared_seed: 8,
            },
            &data,
            &mut rng,
        )
        .unwrap();
        let mut dec = PlcDecoder::with_payloads(profile);
        let collector = net.random_alive_node(&mut rng).unwrap();
        let report = collect(
            &net,
            &dep,
            &mut dec,
            collector,
            &CollectionConfig::default(),
            &mut rng,
        )
        .unwrap();
        (
            report.blocks_collected,
            report.nodes_queried,
            report.query_hops,
            dec.decoded_levels(),
        )
    };
    assert_eq!(run(), run());
}
