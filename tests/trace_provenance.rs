//! Decode-provenance cross-validation: the causal trace must tell the
//! same story as the decoders it instruments.
//!
//! For a pinned seed, the `core.decode.level_unlock` ticks recorded by
//! the tracer are compared against the rows-to-unlock the decoder
//! itself reports (`blocks_processed()` at each observed level
//! transition) — for both PLC (strict prefix unlock) and SLC
//! (independent level completion). A final test pins the determinism
//! contract the exporters advertise: trace dumps are byte-identical
//! across worker-thread counts.

use prlc::obs;
use prlc::prelude::*;
use prlc::sim::{simulate_decoding_curve_with_threads, CurveConfig, Persistence};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// The trace recorder and its enable flag are process-global; tests in
/// this binary run on parallel threads, so every test that records
/// serialises on this guard and resets the recorder inside it.
static TRACE_GUARD: Mutex<()> = Mutex::new(());

fn guarded() -> std::sync::MutexGuard<'static, ()> {
    TRACE_GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

/// Unlock events `(level, tick)` extracted from a trace snapshot in
/// record order.
fn traced_unlocks(snap: &obs::trace::TraceSnapshot) -> Vec<(u64, u64)> {
    snap.iter()
        .filter(|(_, r)| r.name() == "core.decode.level_unlock")
        .map(|(_, r)| (r.arg("level").expect("unlock has a level arg"), r.tick()))
        .collect()
}

#[test]
fn plc_unlock_ticks_match_the_decoder() {
    let _g = guarded();
    obs::trace::enable();
    obs::trace::reset();

    let profile = PriorityProfile::new(vec![2, 3, 5]).expect("valid profile");
    let dist = PriorityDistribution::uniform(3);
    let encoder = Encoder::new(Scheme::Plc, profile.clone());
    let mut dec: PlcDecoder<Gf256, ()> = PlcDecoder::coefficients_only(profile.clone());
    let mut rng = StdRng::seed_from_u64(0xA11CE);

    // Decoder-observed ground truth: blocks consumed at the moment each
    // strict-priority level became decodable.
    let mut expected: Vec<(u64, u64)> = Vec::new();
    while !dec.is_complete() && dec.blocks_processed() < 100 {
        let before = dec.decoded_levels();
        let block = encoder.encode_random_level::<Gf256, _>(&dist, &vec![Vec::new(); 10], &mut rng);
        dec.insert_block(&block);
        for l in before..dec.decoded_levels() {
            expected.push((l as u64, dec.blocks_processed() as u64));
        }
    }
    assert!(dec.is_complete(), "workload must fully decode");
    assert_eq!(expected.len(), 3, "all three levels unlock");

    let snap = obs::trace::snapshot();
    assert_eq!(traced_unlocks(&snap), expected);

    // Every solved-block record names a block of the level the profile
    // assigns it, and exactly N distinct blocks get solved.
    let solved: Vec<_> = snap
        .iter()
        .filter(|(_, r)| r.name() == "core.decode.solved")
        .map(|(_, r)| r.clone())
        .collect();
    assert_eq!(solved.len(), 10, "each source block solved exactly once");
    for r in &solved {
        let block = r.arg("block").expect("solved has a block arg") as usize;
        assert_eq!(r.arg("level"), Some(profile.level_of(block) as u64));
    }

    obs::trace::disable();
    obs::trace::reset();
}

#[test]
fn slc_unlock_ticks_match_the_decoder() {
    let _g = guarded();
    obs::trace::enable();
    obs::trace::reset();

    let profile = PriorityProfile::new(vec![2, 3, 5]).expect("valid profile");
    let dist = PriorityDistribution::uniform(3);
    let encoder = Encoder::new(Scheme::Slc, profile.clone());
    let mut dec: SlcDecoder<Gf256, ()> = SlcDecoder::coefficients_only(profile.clone());
    let mut rng = StdRng::seed_from_u64(0xB0B);

    // SLC levels complete independently (not in strict prefix order),
    // so ground truth tracks per-level completion transitions.
    let mut expected: Vec<(u64, u64)> = Vec::new();
    while !dec.is_complete() && dec.blocks_processed() < 150 {
        let before: Vec<bool> = (0..3).map(|l| dec.level_complete(l)).collect();
        let block = encoder.encode_random_level::<Gf256, _>(&dist, &vec![Vec::new(); 10], &mut rng);
        dec.insert_block(&block);
        for (l, was_complete) in before.iter().enumerate() {
            if !was_complete && dec.level_complete(l) {
                expected.push((l as u64, dec.blocks_processed() as u64));
            }
        }
    }
    assert!(dec.is_complete(), "workload must fully decode");
    assert_eq!(expected.len(), 3, "all three levels complete");

    let snap = obs::trace::snapshot();
    assert_eq!(traced_unlocks(&snap), expected);

    // Solved blocks carry *global* indices even though each SLC level
    // eliminates in its own local matrix.
    for (_, r) in snap
        .iter()
        .filter(|(_, r)| r.name() == "core.decode.solved")
    {
        let block = r.arg("block").expect("solved has a block arg") as usize;
        assert!(block < profile.total_blocks());
        assert_eq!(r.arg("level"), Some(profile.level_of(block) as u64));
    }

    obs::trace::disable();
    obs::trace::reset();
}

/// The determinism contract behind `--trace`: for a pinned seed the
/// exported dumps are byte-identical no matter how many worker threads
/// executed the runs, because records are grouped by run-seed track.
#[test]
fn trace_dumps_are_thread_count_independent() {
    let _g = guarded();
    obs::trace::enable();

    let cfg = CurveConfig {
        persistence: Persistence::Coding(Scheme::Plc),
        profile: PriorityProfile::new(vec![2, 3]).expect("valid profile"),
        distribution: PriorityDistribution::uniform(2),
        max_blocks: 12,
        runs: 6,
        seed: 77,
    };
    let mut dumps = Vec::new();
    for threads in [1usize, 4] {
        obs::trace::reset();
        let curve = simulate_decoding_curve_with_threads::<Gf256>(&cfg, threads);
        assert_eq!(curve.summaries.len(), 13);
        let snap = obs::trace::snapshot();
        assert!(!snap.is_empty());
        dumps.push((snap.to_json(), snap.to_chrome_trace()));
    }
    assert_eq!(dumps[0].0, dumps[1].0, "JSON dump differs across threads");
    assert_eq!(dumps[0].1, dumps[1].1, "Chrome dump differs across threads");

    obs::trace::disable();
    obs::trace::reset();
}
