//! The paper's qualitative claims, asserted as integration tests at
//! reduced (fast) scale. Each test cites the section making the claim.

use prlc::prelude::*;
use prlc::sim::{simulate_decoding_curve, CurveConfig, Persistence};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Sec. 3.1 / Fig. 1: "for both PLC and SLC, as long as the first coded
/// block is received, the first source block is decoded", while "RLC
/// requires at least three coded blocks to decode any useful
/// information".
#[test]
fn fig1_first_block_behaviour() {
    let mut rng = StdRng::seed_from_u64(1);
    let profile = PriorityProfile::new(vec![1, 2]).unwrap();
    let data: Vec<Vec<Gf256>> = (0..3).map(|_| vec![Gf256::random(&mut rng)]).collect();

    for scheme in [Scheme::Slc, Scheme::Plc] {
        let enc = Encoder::new(scheme, profile.clone());
        let block = enc.encode(0, &data, &mut rng);
        let mut plc = PlcDecoder::with_payloads(profile.clone());
        let mut slc = SlcDecoder::with_payloads(profile.clone());
        let decoded = match scheme {
            Scheme::Slc => {
                slc.insert_block(&block);
                slc.decoded_levels()
            }
            _ => {
                plc.insert_block(&block);
                plc.decoded_levels()
            }
        };
        assert_eq!(decoded, 1, "{scheme} failed to decode x1 from one block");
    }

    let enc = Encoder::new(Scheme::Rlc, profile.clone());
    let mut dec: RlcDecoder<Gf256> = RlcDecoder::with_payloads(profile);
    dec.insert_block(&enc.encode(0, &data, &mut rng));
    dec.insert_block(&enc.encode(0, &data, &mut rng));
    assert_eq!(dec.decoded_levels(), 0, "RLC decoded with < 3 blocks");
    dec.insert_block(&enc.encode(0, &data, &mut rng));
    // Three random rows over GF(256) are independent whp.
    assert_eq!(dec.decoded_levels(), 2);
}

/// Sec. 5.2: "the more priority levels, the less source blocks can be
/// recovered by SLC with the same number of coded blocks ... the number
/// of levels do not have much impact on the decoding performance of
/// PLC."
#[test]
fn level_count_hurts_slc_not_plc() {
    let n = 60usize;
    let m = 2 * n;
    let runs = 20;
    let frac = |persistence: Persistence, levels: usize| -> f64 {
        let per = n / levels;
        let profile = PriorityProfile::uniform(levels, per).unwrap();
        let curve = simulate_decoding_curve::<Gf256>(&CurveConfig {
            persistence,
            profile,
            distribution: PriorityDistribution::uniform(levels),
            max_blocks: m,
            runs,
            seed: 42,
        });
        // Fraction of levels decoded at M = 1.5 N.
        curve.summaries[3 * n / 2].mean / levels as f64
    };
    let slc_coarse = frac(Persistence::Coding(Scheme::Slc), 4);
    let slc_fine = frac(Persistence::Coding(Scheme::Slc), 30);
    let plc_coarse = frac(Persistence::Coding(Scheme::Plc), 4);
    let plc_fine = frac(Persistence::Coding(Scheme::Plc), 30);

    assert!(
        slc_fine < slc_coarse - 0.1,
        "SLC should degrade with level count: {slc_coarse} -> {slc_fine}"
    );
    assert!(
        (plc_coarse - plc_fine).abs() < 0.15,
        "PLC should be insensitive to level count: {plc_coarse} -> {plc_fine}"
    );
}

/// Sec. 5.2: "In the extreme case where each level contains one source
/// block, SLC degrades to the scheme of no coding" — their decoding
/// curves must coincide (both are coupon collectors).
#[test]
fn one_block_levels_make_slc_replication() {
    let n = 24usize;
    let profile = PriorityProfile::uniform(n, 1).unwrap();
    let dist = PriorityDistribution::uniform(n);
    let mk = |p: Persistence| {
        simulate_decoding_curve::<Gf256>(&CurveConfig {
            persistence: p,
            profile: profile.clone(),
            distribution: dist.clone(),
            max_blocks: 4 * n,
            runs: 40,
            seed: 7,
        })
    };
    let slc = mk(Persistence::Coding(Scheme::Slc));
    let rep = mk(Persistence::Replication);
    for m in (0..=4 * n).step_by(8) {
        assert!(
            (slc.summaries[m].mean - rep.summaries[m].mean).abs() < 0.12 * n as f64,
            "m={m}: SLC {} vs replication {}",
            slc.summaries[m].mean,
            rep.summaries[m].mean
        );
    }
    // And PLC still mixes: just past N blocks it is far ahead of the
    // degenerate SLC (which faces a full coupon collection).
    let plc = mk(Persistence::Coding(Scheme::Plc));
    assert!(
        plc.summaries[n + 2].mean > slc.summaries[n + 2].mean,
        "PLC should beat degenerate SLC just past N"
    );
}

/// Sec. 6: Growth Codes "treat all data equivalently ... unimportant
/// data may be recovered at the expense of failing to recover important
/// data" — under equal block budgets below N, priority coding recovers
/// the critical level far more often.
#[test]
fn growth_codes_are_priority_blind() {
    let profile = PriorityProfile::new(vec![4, 28]).unwrap();
    // A designed distribution protecting level 1.
    let dist = PriorityDistribution::from_weights(vec![0.5, 0.5]).unwrap();
    let m = 16; // half of N = 32
    let mk = |p: Persistence| {
        simulate_decoding_curve::<Gf256>(&CurveConfig {
            persistence: p,
            profile: profile.clone(),
            distribution: dist.clone(),
            max_blocks: m,
            runs: 60,
            seed: 3,
        })
        .summaries[m]
            .mean
    };
    let plc = mk(Persistence::Coding(Scheme::Plc));
    let growth = mk(Persistence::Growth);
    assert!(
        plc > growth + 0.3,
        "PLC ({plc}) should protect level 1 far better than Growth Codes ({growth})"
    );
}

/// Sec. 5.3 / Fig. 7 narrative: "in comparison with RLC, which requires
/// at least 500 coded blocks to decode any source block, PLC can decode
/// the first level with only 130 coded blocks" — scaled down 10x here.
#[test]
fn designed_distribution_beats_rlc_waiting_time() {
    let profile = PriorityProfile::new(vec![5, 10, 35]).unwrap();
    let dist = PriorityDistribution::from_weights(vec![0.5138, 0.0768, 0.4094]).unwrap();
    let curve = simulate_decoding_curve::<Gf256>(&CurveConfig {
        persistence: Persistence::Coding(Scheme::Plc),
        profile,
        distribution: dist,
        max_blocks: 50,
        runs: 60,
        seed: 13,
    });
    // Paper scale: level 1 at 130/500 blocks; here 13/50. At a tenth of
    // the paper's N the binomial concentration is weaker, so the knee is
    // softer — require most of level 1 by 13 blocks and all of it
    // shortly after.
    assert!(
        curve.summaries[13].mean >= 0.7,
        "level 1 not decoded by 13 blocks: {}",
        curve.summaries[13].mean
    );
    assert!(
        curve.summaries[20].mean >= 0.95,
        "level 1 not decoded by 20 blocks: {}",
        curve.summaries[20].mean
    );
    // RLC equivalent would be 0 until 50.
    assert!(curve.summaries[49].mean > 0.9);
}

/// Sec. 4: sparse dissemination with O(ln N) fanout still decodes — the
/// Dimakis result both SLC and PLC inherit.
#[test]
fn sparse_encoding_still_decodes() {
    let mut rng = StdRng::seed_from_u64(4);
    let profile = PriorityProfile::uniform(3, 20).unwrap();
    let n = profile.total_blocks();
    let enc = Encoder::sparse(Scheme::Plc, profile.clone(), 3.0);
    let dist = PriorityDistribution::uniform(3);
    let mut dec: PlcDecoder<Gf256, ()> = PlcDecoder::coefficients_only(profile);
    let mut processed = 0;
    while !dec.is_complete() && processed < 20 * n {
        let level = dist.sample_level(&mut rng);
        dec.insert_block(&enc.encode_unpayloaded::<Gf256, _>(level, &mut rng));
        processed += 1;
    }
    assert!(dec.is_complete(), "sparse PLC failed to decode");
    assert!(
        processed < 4 * n,
        "sparse decode needed {processed} blocks for N = {n}"
    );
}
