//! Runtime registry coverage: every metric key and trace name
//! documented in `docs/METRICS.md` must actually register in an obs
//! (or trace) snapshot during one full SLC+PLC workload.
//!
//! The static L3 lint proves every *call site* uses a documented key,
//! but it cannot prove the call site is reachable — a key whose
//! instrumented block is dead code would pass the lint while never
//! appearing in real snapshots. This test closes that gap: keys
//! register with `prlc-obs` on first call-site execution (even with a
//! zero value), so presence in the snapshot is exactly "the
//! instrumented block ran".

use prlc::gf::kernel;
use prlc::obs;
use prlc::prelude::*;
use prlc_lint::registry::{parse_metrics_md, MetricKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

use prlc::net::{
    collect_with_faults, observe_deployment, predistribute_with_faults, refresh_with_faults,
    Adversary, AdversaryPlan, AdversaryStrategy, ChurnEvent, FaultPlan, LinkModel, NodeId,
    RefreshConfig, RetryPolicy,
};
use prlc::sim::{
    simulate_decoding_curve, simulate_persistence_timeline, CurveConfig, Persistence,
    TimelineConfig,
};

/// One predistribute → collect round under the given fault knobs.
/// Executes the instrumented session blocks in `protocol.rs`,
/// `collect.rs` and `fault.rs`.
fn net_round(seed: u64, loss: f64, retries: usize, churn_fraction: f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = RingNetwork::new(50, &mut rng);
    let profile = PriorityProfile::new(vec![2, 4]).expect("valid profile");
    let data: Vec<Vec<Gf256>> = vec![Vec::new(); profile.total_blocks()];
    let plan = FaultPlan {
        link: LinkModel {
            loss,
            timeout_hops: None,
        },
        retry: RetryPolicy::with_retries(retries, 1),
        churn: vec![ChurnEvent {
            after_messages: 15,
            fraction: churn_fraction,
        }],
        seed: seed ^ 0x0B5,
    };
    let mut faults = plan.session(net.node_count());
    let dep = predistribute_with_faults(
        &net,
        &ProtocolConfig {
            scheme: Scheme::Plc,
            profile: profile.clone(),
            distribution: PriorityDistribution::uniform(2),
            locations: 24,
            fanout: SourceFanout::All,
            coeff_rep: CoeffRep::Dense,
            two_choices: true,
            node_capacity: None,
            shared_seed: seed,
        },
        &data,
        &mut faults,
        &mut rng,
    )
    .expect("predistribution on a fresh network succeeds");
    let mut dec: PlcDecoder<Gf256, ()> = PlcDecoder::coefficients_only(profile);
    if let Some(collector) = net.random_alive_node(&mut rng) {
        if !faults.is_down(collector) {
            let _ = collect_with_faults(
                &net,
                &dep,
                &mut dec,
                collector,
                &CollectionConfig::default(),
                &mut faults,
                &mut rng,
            );
        }
    }
}

/// A fault-free deployment, a node-failure event, then a repair pass —
/// executes the instrumented session block in `refresh.rs`.
fn refresh_round(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = RingNetwork::new(40, &mut rng);
    let profile = PriorityProfile::new(vec![2, 3]).expect("valid profile");
    let data: Vec<Vec<Gf256>> = vec![Vec::new(); profile.total_blocks()];
    let mut faults = FaultPlan::none().session(net.node_count());
    let mut dep = predistribute_with_faults(
        &net,
        &ProtocolConfig {
            scheme: Scheme::Slc,
            profile,
            distribution: PriorityDistribution::uniform(2),
            locations: 20,
            fanout: SourceFanout::All,
            coeff_rep: CoeffRep::Dense,
            two_choices: false,
            node_capacity: None,
            shared_seed: seed,
        },
        &data,
        &mut faults,
        &mut rng,
    )
    .expect("predistribution on a fresh network succeeds");
    net.fail_uniform(0.3, &mut rng);
    let mut faults = FaultPlan::none().session(net.node_count());
    let report = refresh_with_faults(
        &net,
        &mut dep,
        &RefreshConfig {
            scheme: Scheme::Slc,
            donors_per_slot: 2,
        },
        &mut faults,
        &mut rng,
    );
    assert!(report.is_some(), "network still has alive nodes");
}

/// A deployment attacked by all four adversary strategies — executes
/// the `net.adversary.*` instrumentation in `fault.rs`: strike events
/// (region + directed), adversary crashes, creep compromise, and the
/// per-transmission eclipse loss bias during collection.
fn adversary_round(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = RingNetwork::new(40, &mut rng);
    let profile = PriorityProfile::new(vec![2, 3]).expect("valid profile");
    let data: Vec<Vec<Gf256>> = vec![Vec::new(); profile.total_blocks()];
    let mut faults = FaultPlan::none().session(net.node_count());
    let dep = predistribute_with_faults(
        &net,
        &ProtocolConfig {
            scheme: Scheme::Plc,
            profile: profile.clone(),
            distribution: PriorityDistribution::uniform(2),
            locations: 20,
            fanout: SourceFanout::All,
            coeff_rep: CoeffRep::Dense,
            two_choices: true,
            node_capacity: None,
            shared_seed: seed,
        },
        &data,
        &mut faults,
        &mut rng,
    )
    .expect("predistribution on a fresh network succeeds");

    let collector = NodeId::new(0);
    let strategies = [
        AdversaryStrategy::Region {
            fraction: 0.3,
            segment_len: 2,
        },
        AdversaryStrategy::Eclipse { loss: 0.6 },
        AdversaryStrategy::Targeted {
            kills: 3,
            focus: 1.0,
        },
        AdversaryStrategy::Creep { per_epoch: 0.3 },
    ];
    for (i, strategy) in strategies.into_iter().enumerate() {
        let mut adv = Adversary::new(
            AdversaryPlan {
                strategy,
                after_messages: 0,
                seed: seed ^ i as u64,
            },
            net.node_count(),
        );
        adv.arm_topology(&net, collector, &mut faults);
        adv.arm_observed(&observe_deployment(&dep), &mut faults);
        adv.advance_epoch(&mut faults);
    }
    faults.advance_steps(0);
    // Collect from a survivor: every destination except node 0 carries
    // the eclipse bias, so the queries themselves fire
    // `net.adversary.eclipse.messages`.
    let surviving_collector = (0..net.node_count())
        .map(NodeId::new)
        .find(|n| !faults.is_down(*n))
        .expect("bounded strikes leave survivors");
    let mut dec: PlcDecoder<Gf256, ()> = PlcDecoder::coefficients_only(profile);
    let _ = collect_with_faults(
        &net,
        &dep,
        &mut dec,
        surviving_collector,
        &CollectionConfig::default(),
        &mut faults,
        &mut rng,
    );
}

/// Decoding-curve rounds for both priority schemes — executes the
/// encoder, decoder, progressive-RREF and runner instrumentation.
/// `max_blocks` comfortably exceeds the profile size so redundant rows
/// and level completions both occur.
fn curve_rounds(seed: u64) {
    for scheme in [Scheme::Slc, Scheme::Plc] {
        let profile = PriorityProfile::new(vec![2, 3]).expect("valid profile");
        let cfg = CurveConfig {
            persistence: Persistence::Coding(scheme),
            profile,
            distribution: PriorityDistribution::uniform(2),
            max_blocks: 15,
            runs: 2,
            seed,
        };
        let curve = simulate_decoding_curve::<Gf256>(&cfg);
        assert_eq!(curve.summaries.len(), 16);
    }
}

/// A short churn timeline with repair — executes the epoch
/// instrumentation in `timeline.rs` on top of the refresh path.
fn timeline_round(seed: u64) {
    let profile = PriorityProfile::new(vec![2, 3]).expect("valid profile");
    let summaries = simulate_persistence_timeline::<Gf256>(&TimelineConfig {
        scheme: Scheme::Plc,
        profile,
        distribution: PriorityDistribution::uniform(2),
        nodes: 30,
        locations: 15,
        churn_per_epoch: 0.2,
        epochs: 2,
        repair_donors: Some(2),
        faults: FaultPlan::none(),
        fanout: SourceFanout::All,
        coeff_rep: CoeffRep::Dense,
        runs: 1,
        seed,
    })
    .expect("timeline simulation");
    assert_eq!(summaries.len(), 3);
}

/// Directly exercise all five dispatched GF kernel entry points so the
/// active backend's `gf.<op>.bytes.*` counters register even if the
/// decoding path above happens to skip one.
fn kernel_rounds() {
    let a: Vec<Gf256> = (1u8..=64).map(Gf256::new).collect();
    let mut d = a.clone();
    let c = Gf256::new(7);
    kernel::axpy(&mut d, c, &a);
    kernel::scale_slice(&mut d, c);
    kernel::add_slice(&mut d, &a);
    kernel::mul_slice(&mut d, &a);
    let _ = kernel::dot(&d, &a);
}

/// `gf.<op>.bytes.<backend>` keys register only for the backend the
/// process actually dispatches to; the other suffixes are documented
/// because dispatch is hardware/env dependent.
fn required_at_runtime(key: &str, active_backend: &str) -> bool {
    let backend_suffixed = key.starts_with("gf.")
        && ["scalar", "table", "simd"]
            .iter()
            .any(|b| key.ends_with(&format!(".{b}")));
    !backend_suffixed || key.ends_with(&format!(".{active_backend}"))
}

#[test]
fn every_documented_key_registers_at_runtime() {
    obs::enable();
    obs::trace::enable();
    obs::trace::reset();

    curve_rounds(0xC0FFEE);
    kernel_rounds();
    // Delivered traffic plus heavy churn: unreachable targets and
    // crashed nodes.
    net_round(11, 0.0, 1, 0.6);
    // Near-total loss with no retry budget: gave-up deliveries.
    net_round(12, 0.95, 0, 0.0);
    // Moderate loss with retry budget: exchanges that succeed only
    // after re-sends, firing the retry trace point.
    net_round(14, 0.5, 3, 0.0);
    refresh_round(13);
    timeline_round(15);
    adversary_round(16);

    let snap = obs::snapshot();
    let trace_snap = obs::trace::snapshot();
    let trace_names = trace_snap.names();
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/docs/METRICS.md"))
        .expect("docs/METRICS.md exists");
    let reg = parse_metrics_md(&text);
    assert!(
        reg.problems.is_empty(),
        "registry document problems: {:?}",
        reg.problems
    );
    assert!(
        reg.entries.len() >= 50,
        "registry suspiciously small: {} entries",
        reg.entries.len()
    );

    let backend = kernel::active_backend().name();
    let mut missing: Vec<String> = Vec::new();
    for e in &reg.entries {
        if !required_at_runtime(&e.key, backend) {
            continue;
        }
        let present = match e.kind {
            MetricKind::Counter => snap.counters.iter().any(|(n, _)| *n == e.key),
            MetricKind::Histogram => snap.histograms.iter().any(|(n, _)| *n == e.key),
            MetricKind::Timer => snap.timers.iter().any(|(n, _)| *n == e.key),
            MetricKind::Span | MetricKind::Point => trace_names.contains(&e.key.as_str()),
        };
        if !present {
            missing.push(format!("{} ({})", e.key, e.kind.name()));
        }
    }
    assert!(
        missing.is_empty(),
        "documented keys never registered during the SLC+PLC workload \
         (dead instrumentation or unreachable path): {missing:#?}"
    );
}
