//! The equivalence gate of sparse coefficient rows.
//!
//! `CoeffRep` is a *physical* storage choice: dense `Vec<F>` rows versus
//! sorted `(index, value)` pairs. Nothing observable may depend on it.
//! This gate runs the same pinned-seed pipeline — deploy, churn, repair,
//! collect — once per representation and byte-diffs everything logical:
//! reports, storage slots (via their representation-independent `Debug`),
//! decoded levels and payloads, the metrics snapshot JSON, the full
//! trace dump JSON, and the caller's RNG end state.
//!
//! The only keys excluded from the metrics diff are the `gf.*` kernel
//! byte-volume counters and the wall-clock timers block: the kernel
//! counters measure exactly the symbol traffic sparsity exists to
//! eliminate (sparse/sparse row elimination merges entry lists instead
//! of calling the slice kernels), and timers are non-deterministic by
//! contract. Every logical metric — rref pivots, fill-in, encode nnz,
//! protocol messages — must match byte for byte.

use prlc::net::{
    collect_with_faults, predistribute_with_faults, refresh_with_faults, ChurnEvent,
    CollectionConfig, FaultPlan, LinkModel, Network, ProtocolConfig, RefreshConfig, RetryPolicy,
    RingNetwork, SourceFanout,
};
use prlc::obs;
use prlc::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

/// The obs registry and tracer are process-global; runs that reset and
/// snapshot them must not interleave.
static GUARD: Mutex<()> = Mutex::new(());

/// Everything observable about one pipeline run, rendered to strings.
#[derive(Debug, PartialEq, Eq)]
struct PipelineOutput {
    predistribute_metrics: String,
    slots: String,
    refresh_report: String,
    collect_report: String,
    decoded_levels: usize,
    recovered: Vec<Option<Vec<Gf256>>>,
    metrics_json: String,
    trace_json: String,
    rng_end: u64,
}

/// The metrics snapshot minus the physically-dependent parts: `gf.*`
/// kernel byte-volume counters/histograms and the wall-clock timers.
fn logical_metrics_json(mut snap: obs::Snapshot) -> String {
    snap.counters.retain(|(name, _)| !name.starts_with("gf."));
    snap.histograms.retain(|(name, _)| !name.starts_with("gf."));
    snap.timers.clear();
    snap.to_json()
}

/// Runs deploy → churn → repair → collect once in the given coefficient
/// representation, with obs + trace recording.
fn run_pipeline(
    scheme: Scheme,
    fanout: SourceFanout,
    rep: CoeffRep,
    plan: &FaultPlan,
    seed: u64,
    nodes: usize,
) -> PipelineOutput {
    obs::enable();
    obs::trace::enable();
    obs::reset();
    obs::trace::reset();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = RingNetwork::new(nodes, &mut rng);
    let profile = PriorityProfile::new(vec![2, 3, 5]).unwrap();
    let sources: Vec<Vec<Gf256>> = (0..profile.total_blocks())
        .map(|_| (0..2).map(|_| Gf256::random(&mut rng)).collect())
        .collect();
    let cfg = ProtocolConfig {
        scheme,
        profile: profile.clone(),
        distribution: PriorityDistribution::uniform(profile.num_levels()),
        locations: (nodes / 2).min(60),
        fanout,
        coeff_rep: rep,
        two_choices: true,
        node_capacity: None,
        shared_seed: seed,
    };
    let mut session = plan.clone().session(net.node_count());

    let mut dep = predistribute_with_faults(&net, &cfg, &sources, &mut session, &mut rng)
        .expect("fresh network accepts the protocol");
    let predistribute_metrics = format!("{:?}", dep.metrics());

    net.fail_uniform(0.3, &mut rng);
    assert!(net.alive_count() > 0, "seed killed the whole overlay");

    let refresh_cfg = RefreshConfig {
        scheme,
        donors_per_slot: 3,
    };
    let refresh_report = refresh_with_faults(&net, &mut dep, &refresh_cfg, &mut session, &mut rng);
    let refresh_report = format!("{refresh_report:?}");

    let collector = net
        .random_alive_node(&mut rng)
        .expect("alive_count > 0 was asserted");
    let collect_cfg = CollectionConfig::default();
    let n = profile.total_blocks();
    let (collect_report, decoded_levels, recovered) = if scheme == Scheme::Slc {
        let mut dec: SlcDecoder<Gf256, Vec<Gf256>> = SlcDecoder::with_payloads(profile);
        let report = collect_with_faults(
            &net,
            &dep,
            &mut dec,
            collector,
            &collect_cfg,
            &mut session,
            &mut rng,
        );
        let recovered = (0..n)
            .map(|i| dec.recovered(i).map(<[_]>::to_vec))
            .collect();
        (format!("{report:?}"), dec.decoded_levels(), recovered)
    } else {
        let mut dec: PlcDecoder<Gf256, Vec<Gf256>> = PlcDecoder::with_payloads(profile);
        let report = collect_with_faults(
            &net,
            &dep,
            &mut dec,
            collector,
            &collect_cfg,
            &mut session,
            &mut rng,
        );
        let recovered = (0..n)
            .map(|i| dec.recovered(i).map(<[_]>::to_vec))
            .collect();
        (format!("{report:?}"), dec.decoded_levels(), recovered)
    };

    PipelineOutput {
        predistribute_metrics,
        slots: format!("{:?}", dep.slots()),
        refresh_report,
        collect_report,
        decoded_levels,
        recovered,
        metrics_json: logical_metrics_json(obs::snapshot()),
        trace_json: obs::trace::snapshot().to_json(),
        rng_end: rng.gen(),
    }
}

fn lossy_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        link: LinkModel {
            loss: 0.25,
            timeout_hops: None,
        },
        retry: RetryPolicy::with_retries(2, 1),
        churn: vec![ChurnEvent {
            after_messages: 40,
            fraction: 0.1,
        }],
        seed: seed ^ 0xFA,
    }
}

fn assert_equivalent(
    scheme: Scheme,
    fanout: SourceFanout,
    plan: &FaultPlan,
    seed: u64,
    nodes: usize,
) {
    let dense = run_pipeline(scheme, fanout, CoeffRep::Dense, plan, seed, nodes);
    let sparse = run_pipeline(scheme, fanout, CoeffRep::Sparse, plan, seed, nodes);
    assert_eq!(
        dense, sparse,
        "sparse rows diverged from dense rows \
         ({scheme:?}, {fanout:?}, nodes {nodes}, seed {seed})"
    );
}

#[test]
fn sparse_rows_match_dense_rows_dense_fanout() {
    let _guard = GUARD.lock().unwrap();
    for scheme in [Scheme::Slc, Scheme::Plc] {
        assert_equivalent(scheme, SourceFanout::All, &FaultPlan::none(), 21, 200);
    }
}

#[test]
fn sparse_rows_match_dense_rows_log_fanout() {
    let _guard = GUARD.lock().unwrap();
    for scheme in [Scheme::Slc, Scheme::Plc] {
        assert_equivalent(
            scheme,
            SourceFanout::Log { factor: 2.0 },
            &FaultPlan::none(),
            22,
            200,
        );
    }
}

#[test]
fn sparse_rows_match_dense_rows_under_faults() {
    let _guard = GUARD.lock().unwrap();
    for scheme in [Scheme::Slc, Scheme::Plc] {
        assert_equivalent(
            scheme,
            SourceFanout::Log { factor: 2.0 },
            &lossy_plan(9),
            23,
            200,
        );
    }
}

#[test]
fn sparse_rows_match_dense_rows_at_n_1000() {
    let _guard = GUARD.lock().unwrap();
    assert_equivalent(
        Scheme::Plc,
        SourceFanout::Log { factor: 2.0 },
        &lossy_plan(5),
        24,
        1000,
    );
}
