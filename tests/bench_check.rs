//! Tier-1 gate: the committed perf baselines must stay well-formed and
//! self-consistent, and the `prlc bench --check` differ must keep
//! failing the right way.
//!
//! This test deliberately re-runs **no** probes (an `N = 10^5` timeline
//! in a debug-profile test run would dominate the suite); the CI
//! `bench-regression` job does the live re-run in release mode. What is
//! checked here:
//!
//! * every committed `BENCH_<probe>.json` parses, carries schema
//!   version 1, and names the probe it claims to be;
//! * each baseline diffed against itself is clean with all-zero
//!   environmental deltas;
//! * a perturbed deterministic field, an out-of-band throughput, and a
//!   bumped schema version each fail with their distinct
//!   machine-readable finding.

use std::path::{Path, PathBuf};

use prlc_obs::baseline::{
    diff_envelopes, findings_json, parse_json, FindingKind, Json, Tolerances,
};
use prlc_sim::{bench_file_name, BENCH_PROBES};

fn baseline_path(probe: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(bench_file_name(probe))
}

fn baseline_text(probe: &str) -> String {
    let path = baseline_path(probe);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing committed baseline {}: {e}", path.display()))
}

#[test]
fn committed_baselines_are_versioned_and_complete() {
    for probe in BENCH_PROBES {
        let text = baseline_text(probe);
        let doc = parse_json(&text)
            .unwrap_or_else(|e| panic!("baseline for {probe} is not valid JSON: {e}"));
        let version = doc.get("bench_schema_version").cloned();
        assert!(
            matches!(version, Some(Json::Num(ref n)) if n.value == 1.0),
            "{probe}: bad bench_schema_version {version:?}"
        );
        assert_eq!(
            doc.get("probe"),
            Some(&Json::Str((*probe).to_string())),
            "{probe}: envelope names the wrong probe"
        );
        for key in ["config", "run_metadata", "results", "wall_ms"] {
            assert!(doc.get(key).is_some(), "{probe}: missing {key:?}");
        }
    }
}

#[test]
fn baselines_self_check_clean() {
    for probe in BENCH_PROBES {
        let text = baseline_text(probe);
        let report =
            diff_envelopes(probe, &text, &text, &Tolerances::default()).expect("well-formed");
        assert!(
            report.clean(),
            "{probe}: self-diff has findings {:?}",
            report.findings
        );
        assert!(
            report
                .deltas
                .iter()
                .all(|d| d.delta_pct.is_none() || d.delta_pct == Some(0.0)),
            "{probe}: self-diff has nonzero deltas {:?}",
            report.deltas
        );
    }
}

/// Rewrites the first deterministic number found under `results` in a
/// parsed envelope, returning the rendered mutant.
fn perturb_first_result_number(doc: &mut Json) -> String {
    fn bump(v: &mut Json) -> bool {
        match v {
            Json::Num(n) => {
                n.value += 1.0;
                n.raw = format!("{}", n.value);
                true
            }
            Json::Arr(items) => items.iter_mut().any(bump),
            Json::Obj(members) => members.iter_mut().any(|(_, v)| bump(v)),
            _ => false,
        }
    }
    let results = doc.get_mut("results").expect("results block");
    assert!(bump(results), "no number to perturb under results");
    doc.render()
}

#[test]
fn perturbed_deterministic_field_fails_with_drift() {
    // The lossy baseline has dense numeric result rows; one is enough —
    // the differ walks every envelope through the same code path.
    let text = baseline_text("lossy");
    let mut doc = parse_json(&text).expect("parses");
    let mutant = perturb_first_result_number(&mut doc);
    let report = diff_envelopes("lossy", &text, &mutant, &Tolerances::default()).expect("diff");
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::DeterministicDrift),
        "expected deterministic-drift, got {:?}",
        report.findings
    );
    let json = findings_json(&[report]);
    assert!(json.contains("\"kind\":\"deterministic-drift\""));
}

#[test]
fn out_of_band_throughput_fails_with_its_own_kind() {
    let text = baseline_text("kernel");
    let mut doc = parse_json(&text).expect("parses");
    // Push the dispatched backend's throughput far outside the widest
    // sane band.
    let results = doc.get_mut("results").expect("results");
    let Json::Arr(rows) = results else {
        panic!("results is not an array")
    };
    let mut bumped = false;
    for row in rows {
        if let Some(Json::Num(n)) = row.get_mut("mb_s") {
            n.value *= 1000.0;
            n.raw = format!("{}", n.value);
            bumped = true;
        }
    }
    assert!(bumped, "kernel baseline has no mb_s row");
    let mutant = doc.render();
    let report = diff_envelopes("kernel", &text, &mutant, &Tolerances::default()).expect("diff");
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::ThroughputOutOfBand),
        "expected throughput-out-of-band, got {:?}",
        report.findings
    );
    // The same drift is visible as a signed out-of-band delta row.
    assert!(report
        .deltas
        .iter()
        .any(|d| !d.in_band && d.delta_pct.is_some_and(|p| p > 0.0)));
    let json = findings_json(&[report]);
    assert!(json.contains("\"kind\":\"throughput-out-of-band\""));
}

#[test]
fn unknown_schema_version_is_rejected() {
    let text = baseline_text("sparse");
    let mut doc = parse_json(&text).expect("parses");
    if let Some(Json::Num(n)) = doc.get_mut("bench_schema_version") {
        n.value = 99.0;
        n.raw = "99".to_string();
    } else {
        panic!("baseline has no schema version");
    }
    let mutant = doc.render();
    let report = diff_envelopes("sparse", &text, &mutant, &Tolerances::default()).expect("diff");
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert_eq!(report.findings[0].kind, FindingKind::SchemaVersion);
}

#[test]
fn legacy_results_layout_is_retired() {
    // The pre-unification dumps lived in results/BENCH_*.json without a
    // schema version; the committed layout is root-level and versioned.
    let results_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("results");
    for probe in BENCH_PROBES {
        let legacy = results_dir.join(bench_file_name(probe));
        assert!(
            !legacy.exists(),
            "legacy unversioned baseline still present: {}",
            legacy.display()
        );
    }
}
