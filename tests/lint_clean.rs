//! Tier-1 gate: the workspace must stay invariant-lint-clean.
//!
//! `prlc-lint` enforces the repo's correctness invariants (determinism,
//! unsafe-audit, metric-key registry, RNG domain separation, panic
//! hygiene, RNG-domain registry, kernel-dispatch audit) as machine
//! checks; this test makes any violation a test failure so it cannot
//! land unnoticed even without the CI job.

use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_is_lint_clean() {
    let report = prlc_lint::run(workspace_root(), None).expect("lint walk failed");
    assert!(
        report.clean(),
        "workspace has lint findings:\n{}",
        report.render_text()
    );
    // Guard against the walk silently scanning nothing (e.g. a skip-list
    // regression would make `clean()` vacuously true).
    assert!(
        report.files_scanned >= 60,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
    assert!(
        report.allowlist_entries > 0,
        "lint-allowlist.txt was not picked up"
    );
}

#[test]
fn json_report_is_deterministic() {
    let root = workspace_root();
    let a = prlc_lint::run(root, None)
        .expect("lint walk failed")
        .render_json();
    let b = prlc_lint::run(root, None)
        .expect("lint walk failed")
        .render_json();
    assert_eq!(a, b, "two identical lint runs rendered different JSON");
    assert!(a.contains("\"clean\": true"), "{a}");
}
