//! The memory bound of the event-driven runtime: per-node session state
//! is lazily instantiated, so a predistribution session over a sparse
//! deployment touches O(active nodes), not O(N).
//!
//! Checked through the `net.event.nodes_touched` counter (documented in
//! docs/METRICS.md): the number of nodes whose scratch state was
//! actually instantiated during the session. At N=10⁵ with a code-sized
//! location count this must stay bounded by the deployment, orders of
//! magnitude below the overlay size.

use prlc::net::{predistribute_with_faults, FaultPlan, ProtocolConfig, RingNetwork, SourceFanout};
use prlc::obs;
use prlc::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn counter(snap: &obs::Snapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

#[test]
fn nodes_touched_is_bounded_by_active_set_at_n_100k() {
    obs::enable();
    obs::reset();
    let before = counter(&obs::snapshot(), "net.event.nodes_touched");

    const NODES: usize = 100_000;
    const LOCATIONS: usize = 60;
    let mut rng = StdRng::seed_from_u64(42);
    let net = RingNetwork::new(NODES, &mut rng);
    let profile = PriorityProfile::new(vec![2, 3, 5]).unwrap();
    let sources: Vec<Vec<Gf256>> = vec![Vec::new(); profile.total_blocks()];
    let mut session = FaultPlan::none().session(NODES);
    let dep = predistribute_with_faults(
        &net,
        &ProtocolConfig {
            scheme: Scheme::Plc,
            profile,
            distribution: PriorityDistribution::uniform(3),
            locations: LOCATIONS,
            fanout: SourceFanout::All,
            coeff_rep: CoeffRep::Dense,
            two_choices: true,
            node_capacity: None,
            shared_seed: 42,
        },
        &sources,
        &mut session,
        &mut rng,
    )
    .expect("fresh network accepts the protocol");
    assert_eq!(dep.slots().len(), LOCATIONS);

    let touched = counter(&obs::snapshot(), "net.event.nodes_touched") - before;
    assert!(touched > 0, "session instantiated no node state at all");
    // Each location instantiates at most one owner's scratch state
    // (two-choices *reads* both candidates but only materialises the
    // winner), so the bound is the deployment size — not the overlay.
    assert!(
        touched <= LOCATIONS as u64,
        "touched {touched} nodes for {LOCATIONS} locations"
    );
    assert!(
        (touched as usize) * 100 <= NODES,
        "lazy instantiation failed: touched {touched} of {NODES} nodes"
    );
}
