//! Paper-scale smoke tests (N = 1000, the Sec. 5.1 setting): one full
//! decode per scheme at the sizes the paper's evaluation uses. The
//! GF(2^8) product-table `axpy` keeps each under a second in release
//! mode.

use prlc::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn full_decode(scheme: Scheme, levels: usize, per_level: usize, seed: u64) -> usize {
    let profile = PriorityProfile::uniform(levels, per_level).unwrap();
    let n = profile.total_blocks();
    let dist = PriorityDistribution::uniform(levels);
    let enc = Encoder::new(scheme, profile.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut processed = 0usize;
    match scheme {
        Scheme::Slc => {
            let mut dec: SlcDecoder<Gf256, ()> = SlcDecoder::coefficients_only(profile);
            while !dec.is_complete() {
                let level = dist.sample_level(&mut rng);
                dec.insert_block(&enc.encode_unpayloaded::<Gf256, _>(level, &mut rng));
                processed += 1;
                assert!(processed < 30 * n, "{scheme} did not converge");
            }
        }
        _ => {
            let mut dec: PlcDecoder<Gf256, ()> = PlcDecoder::coefficients_only(profile);
            while !dec.is_complete() {
                let level = dist.sample_level(&mut rng);
                dec.insert_block(&enc.encode_unpayloaded::<Gf256, _>(level, &mut rng));
                processed += 1;
                assert!(processed < 30 * n, "{scheme} did not converge");
            }
        }
    }
    processed
}

#[test]
fn plc_decodes_at_paper_scale() {
    // 5 levels x 200 (Fig. 4a): completion lands near the analysis knee.
    let m = full_decode(Scheme::Plc, 5, 200, 1);
    assert!(
        (1000..1600).contains(&m),
        "PLC N=1000 completed at {m} blocks"
    );
}

#[test]
fn slc_needs_more_blocks_with_many_levels() {
    // Fig. 6 at full scale: SLC with 50 levels needs far more than with 5.
    let coarse = full_decode(Scheme::Slc, 5, 200, 2);
    let fine = full_decode(Scheme::Slc, 50, 20, 3);
    assert!(
        fine > coarse + 300,
        "coupon effect missing: 5-level {coarse} vs 50-level {fine}"
    );
}

#[test]
fn analysis_matches_simulation_at_paper_scale_spot_check() {
    use prlc::analysis::{curves, AnalysisOptions};
    let profile = PriorityProfile::uniform(5, 200).unwrap();
    let dist = PriorityDistribution::uniform(5);
    let opts = AnalysisOptions::sharp();
    // One simulated trajectory, spot-checked at the knee against E(X).
    let enc = Encoder::new(Scheme::Plc, profile.clone());
    let mut rng = StdRng::seed_from_u64(4);
    let mut dec: PlcDecoder<Gf256, ()> = PlcDecoder::coefficients_only(profile.clone());
    for _ in 0..1050 {
        let level = dist.sample_level(&mut rng);
        dec.insert_block(&enc.encode_unpayloaded::<Gf256, _>(level, &mut rng));
    }
    let analytic = curves::expected_levels(Scheme::Plc, &profile, &dist, 1050, &opts);
    // A single run of an integer-valued variable: allow +-2 levels.
    assert!(
        (dec.decoded_levels() as f64 - analytic).abs() <= 2.0,
        "sim {} vs E(X) {analytic}",
        dec.decoded_levels()
    );
}
