//! The equivalence gate of the event-driven protocol runtime.
//!
//! The public faulty entry points (`predistribute_with_faults`,
//! `collect_with_faults`, `refresh_with_faults`) run session state
//! machines on the discrete-event scheduler; the original monolithic
//! loops survive verbatim in `prlc::net::sync`. This gate runs the same
//! pinned-seed pipeline — deploy, churn, repair, collect — down both
//! paths and byte-diffs *everything*: reports, storage slots, the full
//! metrics snapshot JSON, the full trace dump JSON, and the caller's
//! RNG end state. Any divergence in operation order, RNG consumption,
//! or observability emission shows up as a byte diff here.

use prlc::net::{
    collect_with_faults, observe_deployment, predistribute_with_faults, refresh_with_faults, sync,
    Adversary, AdversaryPlan, AdversaryStrategy, ChurnEvent, CollectionConfig, FaultPlan,
    LinkModel, Network, NodeId, ProtocolConfig, RefreshConfig, RetryPolicy, RingNetwork,
    SourceFanout,
};
use prlc::obs;
use prlc::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

/// The obs registry and tracer are process-global; runs that reset and
/// snapshot them must not interleave.
static GUARD: Mutex<()> = Mutex::new(());

/// Everything observable about one pipeline run, rendered to strings.
#[derive(Debug, PartialEq, Eq)]
struct PipelineOutput {
    predistribute_metrics: String,
    slots: String,
    refresh_report: String,
    collect_report: String,
    decoded_levels: usize,
    metrics_json: String,
    trace_json: String,
    rng_end: u64,
}

/// Runs deploy → churn → repair → collect once, on the event path or
/// the synchronous reference path, with obs + trace recording.
fn run_pipeline(
    scheme: Scheme,
    plan: &FaultPlan,
    seed: u64,
    nodes: usize,
    sync_path: bool,
    adversary: bool,
) -> PipelineOutput {
    obs::enable();
    obs::trace::enable();
    obs::reset();
    obs::trace::reset();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = RingNetwork::new(nodes, &mut rng);
    let profile = PriorityProfile::new(vec![2, 3, 5]).unwrap();
    let sources: Vec<Vec<Gf256>> = (0..profile.total_blocks())
        .map(|_| (0..2).map(|_| Gf256::random(&mut rng)).collect())
        .collect();
    let cfg = ProtocolConfig {
        scheme,
        profile: profile.clone(),
        distribution: PriorityDistribution::uniform(profile.num_levels()),
        locations: (nodes / 2).min(60),
        fanout: SourceFanout::All,
        coeff_rep: CoeffRep::Dense,
        two_choices: true,
        node_capacity: None,
        shared_seed: seed,
    };
    let mut session = plan.clone().session(net.node_count());

    // Topology-armed adversaries (regional outage + collector eclipse)
    // go in before any protocol traffic, like a real pre-positioned
    // attacker. Adversary strikes and eclipse bias live inside the
    // shared `FaultSession`, so both runtime paths must replay them
    // byte-identically.
    if adversary {
        let mut region = Adversary::new(
            AdversaryPlan {
                strategy: AdversaryStrategy::Region {
                    fraction: 0.05,
                    segment_len: 3,
                },
                after_messages: 60,
                seed: seed ^ 0xA1,
            },
            net.node_count(),
        );
        region.arm_topology(&net, NodeId::new(0), &mut session);
        let mut eclipse = Adversary::new(
            AdversaryPlan {
                strategy: AdversaryStrategy::Eclipse { loss: 0.4 },
                after_messages: 0,
                seed: seed ^ 0xA2,
            },
            net.node_count(),
        );
        eclipse.arm_topology(&net, NodeId::new(0), &mut session);
    }

    let mut dep = if sync_path {
        sync::predistribute_with_faults(&net, &cfg, &sources, &mut session, &mut rng)
    } else {
        predistribute_with_faults(&net, &cfg, &sources, &mut session, &mut rng)
    }
    .expect("fresh network accepts the protocol");
    let predistribute_metrics = format!("{:?}", dep.metrics());

    net.fail_uniform(0.3, &mut rng);
    assert!(net.alive_count() > 0, "seed killed the whole overlay");

    // Observation-armed adversaries (targeted cache killer + slow
    // compromise) act on the deployed slot metadata before repair.
    if adversary {
        let mut targeted = Adversary::new(
            AdversaryPlan {
                strategy: AdversaryStrategy::Targeted {
                    kills: 5,
                    focus: 0.7,
                },
                after_messages: 30,
                seed: seed ^ 0xA3,
            },
            net.node_count(),
        );
        targeted.arm_observed(&observe_deployment(&dep), &mut session);
        let mut creep = Adversary::new(
            AdversaryPlan {
                strategy: AdversaryStrategy::Creep { per_epoch: 0.02 },
                after_messages: 0,
                seed: seed ^ 0xA4,
            },
            net.node_count(),
        );
        creep.advance_epoch(&mut session);
    }

    let refresh_cfg = RefreshConfig {
        scheme,
        donors_per_slot: 3,
    };
    let refresh_report = if sync_path {
        sync::refresh_with_faults(&net, &mut dep, &refresh_cfg, &mut session, &mut rng)
    } else {
        refresh_with_faults(&net, &mut dep, &refresh_cfg, &mut session, &mut rng)
    };
    let refresh_report = format!("{refresh_report:?}");

    let collector = net
        .random_alive_node(&mut rng)
        .expect("alive_count > 0 was asserted");
    let collect_cfg = CollectionConfig::default();
    let (collect_report, decoded_levels) = if scheme == Scheme::Slc {
        let mut dec: SlcDecoder<Gf256, Vec<Gf256>> = SlcDecoder::with_payloads(profile);
        let report = if sync_path {
            sync::collect_with_faults(
                &net,
                &dep,
                &mut dec,
                collector,
                &collect_cfg,
                &mut session,
                &mut rng,
            )
        } else {
            collect_with_faults(
                &net,
                &dep,
                &mut dec,
                collector,
                &collect_cfg,
                &mut session,
                &mut rng,
            )
        };
        (format!("{report:?}"), dec.decoded_levels())
    } else {
        let mut dec: PlcDecoder<Gf256, Vec<Gf256>> = PlcDecoder::with_payloads(profile);
        let report = if sync_path {
            sync::collect_with_faults(
                &net,
                &dep,
                &mut dec,
                collector,
                &collect_cfg,
                &mut session,
                &mut rng,
            )
        } else {
            collect_with_faults(
                &net,
                &dep,
                &mut dec,
                collector,
                &collect_cfg,
                &mut session,
                &mut rng,
            )
        };
        (format!("{report:?}"), dec.decoded_levels())
    };

    PipelineOutput {
        predistribute_metrics,
        slots: format!("{:?}", dep.slots()),
        refresh_report,
        collect_report,
        decoded_levels,
        metrics_json: obs::snapshot().to_json(),
        trace_json: obs::trace::snapshot().to_json(),
        rng_end: rng.gen(),
    }
}

fn lossy_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        link: LinkModel {
            loss: 0.25,
            timeout_hops: None,
        },
        retry: RetryPolicy::with_retries(2, 1),
        churn: vec![ChurnEvent {
            after_messages: 40,
            fraction: 0.1,
        }],
        seed: seed ^ 0xFA,
    }
}

fn assert_equivalent(scheme: Scheme, plan: &FaultPlan, seed: u64, nodes: usize) {
    let event = run_pipeline(scheme, plan, seed, nodes, false, false);
    let sync = run_pipeline(scheme, plan, seed, nodes, true, false);
    assert_eq!(
        event, sync,
        "event runtime diverged from the synchronous reference \
         ({scheme:?}, nodes {nodes}, seed {seed})"
    );
}

fn assert_equivalent_adversarial(scheme: Scheme, plan: &FaultPlan, seed: u64, nodes: usize) {
    let event = run_pipeline(scheme, plan, seed, nodes, false, true);
    let sync = run_pipeline(scheme, plan, seed, nodes, true, true);
    assert_eq!(
        event, sync,
        "event runtime diverged from the synchronous reference under an \
         adversary plan ({scheme:?}, nodes {nodes}, seed {seed})"
    );
}

#[test]
fn event_path_matches_sync_path_without_faults() {
    let _guard = GUARD.lock().unwrap();
    for scheme in [Scheme::Slc, Scheme::Plc] {
        assert_equivalent(scheme, &FaultPlan::none(), 11, 200);
    }
}

#[test]
fn event_path_matches_sync_path_under_faults() {
    let _guard = GUARD.lock().unwrap();
    for scheme in [Scheme::Slc, Scheme::Plc] {
        assert_equivalent(scheme, &lossy_plan(7), 12, 200);
    }
}

/// All four adversary strategies at once — pre-positioned region +
/// eclipse, deployment-observed targeted killer, and one creep epoch —
/// on top of a lossy plan. Adversary strikes, eclipse bias, and the
/// `net.adversary.*` emission all live in the shared fault session, so
/// reports, metrics JSON, and trace JSON must byte-match across paths.
#[test]
fn event_path_matches_sync_path_under_adversary_plan() {
    let _guard = GUARD.lock().unwrap();
    for scheme in [Scheme::Slc, Scheme::Plc] {
        assert_equivalent_adversarial(scheme, &lossy_plan(9), 14, 200);
        assert_equivalent_adversarial(scheme, &FaultPlan::none(), 14, 200);
    }
}

#[test]
fn event_path_matches_sync_path_at_n_1000() {
    let _guard = GUARD.lock().unwrap();
    assert_equivalent(Scheme::Plc, &lossy_plan(3), 13, 1000);
    assert_equivalent(Scheme::Plc, &FaultPlan::none(), 13, 1000);
}
