//! Allocation bounds of the sparse paths.
//!
//! The paper's `O(ln N)` sparsity claim is only real if the code stops
//! *allocating* `O(N)` per block. A counting global allocator measures
//! the bytes allocated across the two operations that used to be the
//! offenders:
//!
//! * `rand::seq::index::sample`, which materialised the whole
//!   `0..length` pool (8 GB at `length = 10^9`), and
//! * sparse-representation coefficient encoding, which went through a
//!   dense length-`N` vector (100 kB at `N = 10^5`).
//!
//! Both must now stay within a few kilobytes regardless of `N`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use prlc::prelude::*;
use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::SeedableRng;

/// Counts every byte handed out (alloc + realloc growth); deallocation
/// is irrelevant — the old implementations would show up here as huge
/// transient allocations even though they freed the memory afterwards.
struct CountingAlloc;

static ALLOCATED: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System`; the only addition is a relaxed
// atomic counter bump, which cannot violate the allocator contract.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: delegates to `System.alloc` under the caller's layout.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        // SAFETY: same layout the caller guaranteed valid.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: delegates to `System.dealloc` with the caller's ptr/layout.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: ptr was returned by `System.alloc` with this layout.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: delegates to `System.realloc` with the caller's arguments.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATED.fetch_add(new_size as u64, Ordering::Relaxed);
        // SAFETY: ptr/layout/new_size are forwarded unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The counter is process-global; measured sections must not interleave
/// with each other (the harness runs tests on separate threads).
static GUARD: Mutex<()> = Mutex::new(());

fn bytes_allocated_by(f: impl FnOnce()) -> u64 {
    let before = ALLOCATED.load(Ordering::Relaxed);
    f();
    ALLOCATED.load(Ordering::Relaxed) - before
}

/// Generous slack for harness/runtime noise; five orders of magnitude
/// below the dense cost the bound is guarding against.
const BUDGET: u64 = 64 * 1024;

#[test]
fn sample_allocates_o_amount_not_o_length() {
    let _guard = GUARD.lock().unwrap();
    let mut rng = StdRng::seed_from_u64(41);
    let mut out = Vec::new();
    let bytes = bytes_allocated_by(|| {
        out = sample(&mut rng, 1_000_000_000, 20).into_vec();
    });
    assert_eq!(out.len(), 20);
    assert!(
        bytes < BUDGET,
        "sample(10^9, 20) allocated {bytes} bytes — the 0..length pool is back"
    );
}

#[test]
fn sparse_encode_allocates_o_ln_n_not_o_n() {
    let _guard = GUARD.lock().unwrap();
    let n = 100_000;
    let profile = PriorityProfile::flat(n).unwrap();
    let enc = Encoder::sparse(Scheme::Rlc, profile, 2.0).with_coeff_rep(CoeffRep::Sparse);
    let mut rng = StdRng::seed_from_u64(42);
    let mut row: Option<CoeffRow<Gf256>> = None;
    let bytes = bytes_allocated_by(|| {
        row = Some(enc.encode_coefficients::<Gf256, _>(0, &mut rng));
    });
    let row = row.unwrap();
    assert_eq!(row.rep(), CoeffRep::Sparse);
    assert_eq!(row.len(), n);
    let expected = (2.0 * (n as f64).ln()).ceil() as usize;
    assert_eq!(row.nnz(), expected);
    assert!(
        bytes < BUDGET,
        "sparse encode at N={n} allocated {bytes} bytes — a dense \
         length-N buffer is hiding in the path"
    );
}
