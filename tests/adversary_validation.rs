//! Closed-form cross-validation of the structured adversary layer
//! (`prlc-net::adversary`): where a strategy degenerates to an
//! analyzable process, its measured behaviour must match the analysis.
//!
//! * Region outage with segment length 1 *is* iid churn — it must
//!   byte-match a [`ChurnEvent`] run on the same fault-RNG domain, all
//!   the way through a predistribute → crash → collect pipeline.
//! * Targeted killing with `focus = 0` is a uniform fixed-kill-count
//!   process: the survivors are a hypergeometric (uniform
//!   without-replacement) sample, so per-level decode frequencies must
//!   match `curves::survival` evaluated at `M - K` blocks.
//! * The same uniform-kill process applied to an `r`-replicated object
//!   set must reproduce the replicated-erasure-codes persistency form
//!   `Pr(object lost) = C(M-r, K-r) / C(M, K)`.

use prlc::net::{
    collect_with_faults, observe_deployment, predistribute_with_faults, Adversary, AdversaryPlan,
    AdversaryStrategy, ChurnEvent, Deployment, FaultPlan, LinkModel, RetryPolicy, SlotObservation,
    StorageSlot,
};
use prlc::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One predistribute → strike → collect pipeline over a 64-node ring.
/// With `adversary = false`, the strike is a plan-level [`ChurnEvent`];
/// with `adversary = true`, it is a region strike of segment length 1
/// armed for the same step. Everything else is identical.
fn seg1_pipeline(adversary: bool, seed: u64) -> (String, usize, String, usize, usize, u64) {
    let profile = PriorityProfile::new(vec![2, 3]).unwrap();
    let dist = PriorityDistribution::uniform(2);
    let nodes = 64usize;
    let fraction = 0.3f64;
    let after_messages = 40usize;

    let mut rng = StdRng::seed_from_u64(seed);
    let net = RingNetwork::new(nodes, &mut rng);
    let churn = if adversary {
        Vec::new()
    } else {
        vec![ChurnEvent {
            after_messages,
            fraction,
        }]
    };
    let plan = FaultPlan {
        link: LinkModel {
            loss: 0.2,
            timeout_hops: None,
        },
        retry: RetryPolicy::with_retries(2, 1),
        churn,
        seed: 5,
    };
    let mut session = plan.session(nodes);
    if adversary {
        // Armed before any message flows, so the strike's absolute step
        // equals the churn event's `after_messages`. The adversary's own
        // seed is irrelevant here: region anchor draws come from the
        // session's fault RNG, exactly where churn draws come from.
        let mut adv = Adversary::new(
            AdversaryPlan {
                strategy: AdversaryStrategy::Region {
                    fraction,
                    segment_len: 1,
                },
                after_messages,
                seed: 0xDEAD,
            },
            nodes,
        );
        adv.arm_topology(&net, NodeId::new(0), &mut session);
    }

    let sources: Vec<Vec<Gf256>> = vec![Vec::new(); profile.total_blocks()];
    let dep = predistribute_with_faults(
        &net,
        &ProtocolConfig {
            scheme: Scheme::Plc,
            profile: profile.clone(),
            distribution: dist,
            locations: 25,
            fanout: SourceFanout::All,
            coeff_rep: CoeffRep::Dense,
            two_choices: true,
            node_capacity: None,
            shared_seed: seed,
        },
        &sources,
        &mut session,
        &mut rng,
    )
    .unwrap();

    let collector = net.random_alive_node(&mut rng).unwrap();
    let mut dec: PlcDecoder<Gf256, ()> = PlcDecoder::coefficients_only(profile);
    let report = collect_with_faults(
        &net,
        &dep,
        &mut dec,
        collector,
        &CollectionConfig::default(),
        &mut session,
        &mut rng,
    );
    (
        format!("{:?}", dep.slots()),
        dec.decoded_levels(),
        format!("{report:?}"),
        session.crashed_nodes(),
        session.steps(),
        rng.gen::<u64>(),
    )
}

/// Region outage with `segment_len == 1` degenerates to iid churn: the
/// whole pipeline — deployment, crash set, collection report, decode
/// result, protocol-RNG end state — byte-matches a `ChurnEvent` run of
/// the same fraction on the same fault seed. (Observability keys differ
/// by design: the adversary emits `net.adversary.*`, churn emits
/// `net.churn.*` — this comparison is about protocol state.)
#[test]
fn region_segment_one_byte_matches_iid_churn() {
    for seed in [11u64, 12, 13, 14] {
        let churn_run = seg1_pipeline(false, seed);
        let region_run = seg1_pipeline(true, seed);
        assert_eq!(churn_run, region_run, "seed {seed}");
        // The strike actually did something in at least one pipeline
        // stage — otherwise this test proves nothing.
        assert!(churn_run.3 > 0, "seed {seed}: nothing crashed");
    }
}

/// Targeted killing with `focus = 0` crashes a uniform without-
/// replacement sample of K caches. Over iid one-block-per-node
/// deployments the survivors are then a uniform (M-K)-subset of M iid
/// slots — i.e. exactly the iid sampling model behind
/// `curves::survival` evaluated at `m = M - K` delivered blocks. The
/// empirical per-level decode frequency must match within binomial-CI
/// tolerance.
#[test]
fn targeted_focus_zero_matches_hypergeometric_survival() {
    let profile = PriorityProfile::new(vec![2, 2]).unwrap();
    let n = profile.num_levels();
    let dist = PriorityDistribution::from_weights(vec![0.45, 0.55]).unwrap();
    let opts = AnalysisOptions::rank_exact(256.0);
    let nodes = 32usize;
    let locations = 12usize; // M
    let kills = 4usize; // K
    let runs = 400usize;

    for scheme in [Scheme::Slc, Scheme::Plc] {
        let encoder = Encoder::new(scheme, profile.clone());
        let mut empirical = vec![0.0f64; n + 1];
        for run in 0..runs as u64 {
            let mut rng = StdRng::seed_from_u64(0x00AD_5EED + run);
            let net = RingNetwork::new(nodes, &mut rng);
            use rand::seq::SliceRandom;
            let mut ids: Vec<usize> = (0..nodes).collect();
            ids.shuffle(&mut rng);
            let slots: Vec<StorageSlot<Gf256>> = ids[..locations]
                .iter()
                .map(|&node| {
                    let level = dist.sample_level(&mut rng);
                    StorageSlot {
                        node: NodeId::new(node),
                        level,
                        block: encoder.encode_unpayloaded(level, &mut rng),
                    }
                })
                .collect();
            let dep = Deployment::from_slots(slots, profile.clone());

            let mut session = FaultPlan::none().session(nodes);
            let mut adv = Adversary::new(
                AdversaryPlan {
                    strategy: AdversaryStrategy::Targeted { kills, focus: 0.0 },
                    after_messages: 0,
                    seed: run,
                },
                nodes,
            );
            let chosen = adv.arm_observed(&observe_deployment(&dep), &mut session);
            assert_eq!(chosen.len(), kills);
            session.advance_steps(0); // fire the strike at the boundary

            // Collect from a non-caching node (never a kill candidate),
            // with early stopping disabled so every surviving block is
            // delivered.
            let collector = NodeId::new(ids[locations]);
            let cfg = CollectionConfig {
                target_levels: Some(n + 1),
            };
            let levels = match scheme {
                Scheme::Slc => {
                    let mut dec: SlcDecoder<Gf256, ()> =
                        SlcDecoder::coefficients_only(profile.clone());
                    let r = collect_with_faults(
                        &net,
                        &dep,
                        &mut dec,
                        collector,
                        &cfg,
                        &mut session,
                        &mut rng,
                    )
                    .unwrap();
                    assert_eq!(r.blocks_collected, locations - kills);
                    dec.decoded_levels()
                }
                _ => {
                    let mut dec: PlcDecoder<Gf256, ()> =
                        PlcDecoder::coefficients_only(profile.clone());
                    let r = collect_with_faults(
                        &net,
                        &dep,
                        &mut dec,
                        collector,
                        &cfg,
                        &mut session,
                        &mut rng,
                    )
                    .unwrap();
                    assert_eq!(r.blocks_collected, locations - kills);
                    dec.decoded_levels()
                }
            };
            for (k, count) in empirical.iter_mut().enumerate().skip(1) {
                if levels >= k {
                    *count += 1.0;
                }
            }
        }
        for (k, count) in empirical.iter().enumerate().skip(1) {
            let emp = count / runs as f64;
            let ana = curves::survival(scheme, &profile, &dist, locations - kills, k, &opts);
            // 3σ binomial CI on the empirical frequency, plus a small
            // model-mismatch allowance (same tolerance as the iid-loss
            // cross-validation).
            let p = ana.clamp(0.05, 0.95);
            let tol = 3.0 * (p * (1.0 - p) / runs as f64).sqrt() + 0.03;
            assert!(
                (emp - ana).abs() < tol,
                "{scheme} Pr(X>={k}): empirical {emp:.4} vs analytic {ana:.4} (tol {tol:.4})"
            );
        }
    }
}

/// Exact binomial coefficient over f64 (small arguments only).
fn binom(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let mut out = 1.0f64;
    for i in 0..k.min(n - k) {
        out = out * (n - i) as f64 / (i + 1) as f64;
    }
    out
}

/// The uniform-kill process behind `focus = 0` reproduces the
/// replicated-erasure-codes persistency closed form: with B objects
/// stored as r replicas each on M = B·r distinct nodes, killing K nodes
/// uniformly loses an object with probability C(M-r, K-r) / C(M, K)
/// (the fraction of K-subsets covering all r of its replicas).
#[test]
fn targeted_focus_zero_matches_replication_persistency() {
    let objects = 5usize; // B
    let replicas = 3usize; // r
    let nodes = objects * replicas; // M = 15
    let kills = 10usize; // K
    let runs = 600usize;

    // Observation list: node b*r + j caches replica j of object b. All
    // replicas share a level — the adversary sees nothing to focus on,
    // and focus = 0 ignores values anyway.
    let observations: Vec<SlotObservation> = (0..nodes)
        .map(|i| SlotObservation {
            node: NodeId::new(i),
            level: 1,
        })
        .collect();

    let mut dead_fraction_sum = 0.0f64;
    for run in 0..runs as u64 {
        let mut session = FaultPlan::none().session(nodes);
        let mut adv = Adversary::new(
            AdversaryPlan {
                strategy: AdversaryStrategy::Targeted { kills, focus: 0.0 },
                after_messages: 0,
                seed: 0x5EED + run,
            },
            nodes,
        );
        let chosen = adv.arm_observed(&observations, &mut session);
        assert_eq!(chosen.len(), kills);
        session.advance_steps(0);
        assert_eq!(session.crashed_nodes(), kills);

        let mut dead = 0usize;
        for b in 0..objects {
            let survives = (0..replicas).any(|j| !session.is_down(NodeId::new(b * replicas + j)));
            if !survives {
                dead += 1;
            }
        }
        dead_fraction_sum += dead as f64 / objects as f64;
    }
    let empirical = dead_fraction_sum / runs as f64;
    let analytic = binom(nodes - replicas, kills - replicas) / binom(nodes, kills);
    // Per-run dead fractions are iid in [0,1]; 3σ on their mean plus a
    // small allowance covers the within-run correlation.
    let tol = 3.0 * (0.25f64 / runs as f64).sqrt() + 0.01;
    assert!(
        (empirical - analytic).abs() < tol,
        "Pr(object lost): empirical {empirical:.4} vs analytic {analytic:.4} (tol {tol:.4})"
    );
}
